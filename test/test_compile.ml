(* The rule compiler (Sb_ctrl.Compile) and the delta rollout built on it.

   The load-bearing property is EQUIVALENCE: a system rolling out compiled
   deltas (the default) must end in exactly the state of one re-installing
   full route sets — identical packed rule arrays on every forwarder,
   identical probe traces, identical stage counters. The qcheck property
   drives both through the same random op soup (chain requests, route
   updates, bursts that exercise the queued-delta composition, instance
   scaling) and compares everything; on failure qcheck shrinks the op
   seed. *)

module S = Sb_ctrl.System
module T = Sb_ctrl.Types
module C = Sb_ctrl.Compile
module E = Sb_sim.Engine
module DP = Sb_dataplane.Shard
module Packet = Sb_dataplane.Packet
module Rng = Sb_util.Rng

let delay30 a b = if a = b then 0. else 0.030

(* ------------------------- Compile unit tests ------------------------ *)

let spec ?(traffic = 5.0) name vnfs =
  {
    T.spec_name = name;
    ingress_attachment = "att-0";
    egress_attachment = "att-3";
    vnfs;
    traffic;
  }

let route sites w = { T.element_sites = Array.of_list sites; weight = w }

let test_sharing_across_chains () =
  (* Two chains with identical routes share every spine node and action. *)
  let t = C.empty () in
  let sp = spec "a" [ 7; 8 ] in
  let routes = [ route [ 0; 1; 2; 3 ] 1.0 ] in
  let p1 = C.prepare t ~chain:1 ~spec:sp ~routes in
  let t = C.commit t ~chain:1 p1 in
  let s1 = C.stats t in
  let p2 = C.prepare t ~chain:2 ~spec:sp ~routes in
  let t = C.commit t ~chain:2 p2 in
  let s2 = C.stats t in
  Alcotest.(check int) "3 stages interned once" 3 s1.C.nodes;
  Alcotest.(check int) "second chain adds no nodes" s1.C.nodes s2.C.nodes;
  Alcotest.(check int) "second chain adds no actions" s1.C.actions s2.C.actions;
  Alcotest.(check int) "stage total counts both" 6 s2.C.stages_total

let test_suffix_sharing () =
  (* Chains differing only in stage 0 share the stage-1.. suffix. *)
  let t = C.empty () in
  let sp = spec "a" [ 7; 8 ] in
  let p1 = C.prepare t ~chain:1 ~spec:sp ~routes:[ route [ 0; 1; 2; 3 ] 1.0 ] in
  let t = C.commit t ~chain:1 p1 in
  let n1 = (C.stats t).C.nodes in
  let p2 = C.prepare t ~chain:2 ~spec:sp ~routes:[ route [ 5; 1; 2; 3 ] 1.0 ] in
  let t = C.commit t ~chain:2 p2 in
  let n2 = (C.stats t).C.nodes in
  Alcotest.(check int) "only stage 0 differs: one extra node" (n1 + 1) n2

let test_delta_only_changed_stages () =
  let t = C.empty () in
  let sp = spec "a" [ 7; 8 ] in
  let p1 = C.prepare t ~chain:1 ~spec:sp ~routes:[ route [ 0; 1; 2; 3 ] 1.0 ] in
  let t = C.commit t ~chain:1 p1 in
  (* Move only the last hop: stage 2's transition changes, stages 0-1 keep
     their interned nodes... but the spine is keyed by tail, so stage 0/1
     nodes change identity while their ACTIONS are equal — the diff walks
     until the node ids meet and emits only stages whose action moved. *)
  let p2 = C.prepare t ~chain:1 ~spec:sp ~routes:[ route [ 0; 1; 2; 4 ] 1.0 ] in
  let d = C.delta_from_committed t p2 in
  Alcotest.(check bool) "not full" false d.T.cd_full;
  Alcotest.(check int) "base 1" 1 d.T.cd_base;
  Alcotest.(check int) "target 2" 2 d.T.cd_target;
  Alcotest.(check (list int)) "only stage 2 shipped" [ 2 ]
    (List.map (fun sd -> sd.T.sd_stage) d.T.cd_stages);
  (* Demand: vnf 7 at site 1 and vnf 8 at site 2 are untouched; no rows. *)
  Alcotest.(check (list int)) "no demand rows" []
    (List.map fst d.T.cd_demand)

let test_delta_full_on_vnf_set_change () =
  let t = C.empty () in
  let p1 = C.prepare t ~chain:1 ~spec:(spec "a" [ 7 ]) ~routes:[ route [ 0; 1; 2 ] 1.0 ] in
  let t = C.commit t ~chain:1 p1 in
  let p2 =
    C.prepare t ~chain:1 ~spec:(spec "a" [ 7; 8 ]) ~routes:[ route [ 0; 1; 1; 2 ] 1.0 ]
  in
  let d = C.delta_from_committed t p2 in
  Alcotest.(check bool) "full delta" true d.T.cd_full;
  Alcotest.(check int) "all stages shipped" 3 (List.length d.T.cd_stages)

let test_compose_merges_stages () =
  let t = C.empty () in
  let sp = spec "a" [ 7; 8 ] in
  let r0 = [ route [ 0; 1; 2; 3 ] 1.0 ] in
  let r1 = [ route [ 5; 1; 2; 3 ] 1.0 ] (* changes stage 0 *) in
  let r2 = [ route [ 5; 1; 2; 4 ] 1.0 ] (* changes stage 2 on top *) in
  let p0 = C.prepare t ~chain:1 ~spec:sp ~routes:r0 in
  let t = C.commit t ~chain:1 p0 in
  let p1 = C.prepare t ~chain:1 ~spec:sp ~routes:r1 in
  let d1 = C.delta_from_committed t p1 in
  let p2 = C.prepare ~version:(C.prepared_version p1 + 1) t ~chain:1 ~spec:sp ~routes:r2 in
  let d2 = C.delta_between t ~base:p1 ~target:p2 in
  let d = C.compose d1 d2 in
  Alcotest.(check int) "base is older's" 1 d.T.cd_base;
  Alcotest.(check int) "target is newer's" 3 d.T.cd_target;
  Alcotest.(check (list int)) "both changed stages" [ 0; 2 ]
    (List.map (fun sd -> sd.T.sd_stage) d.T.cd_stages);
  (* Same stage in both: the newer transition wins. *)
  let p3 = C.prepare ~version:4 t ~chain:1 ~spec:sp ~routes:r0 in
  let d3 = C.delta_between t ~base:p2 ~target:p3 in
  let dd = C.compose d d3 in
  (match List.find_opt (fun sd -> sd.T.sd_stage = 0) dd.T.cd_stages with
  | Some sd -> Alcotest.(check bool) "newer stage-0 row wins" true (sd.T.sd_tr = [| (0, 1, 1.0) |])
  | None -> Alcotest.fail "stage 0 missing from composed delta")

(* ---------------- Delta vs Full rollout equivalence ------------------ *)

(* Fixed topology: 4 sites, edges everywhere, vnfs 7/8/9 deployed at every
   site with capacity generous enough that most op soups commit but tight
   enough that some admission rejects (and their abort/recompute paths)
   occur. *)
let num_sites = 4
let vnf_pool = [| 7; 8; 9 |]

let build ~rollout ~flow_store =
  let sys =
    S.create ~seed:42 ~rollout ~flow_store ~num_sites ~delay:delay30 ~gsb_site:0 ()
  in
  Array.iter
    (fun vnf ->
      for site = 0 to num_sites - 1 do
        S.deploy_vnf sys ~vnf ~site ~capacity:30. ~instances:2
      done)
    vnf_pool;
  for site = 0 to num_sites - 1 do
    S.register_edge sys ~site ~attachment:(Printf.sprintf "att-%d" site)
  done;
  sys

(* Route policy: deterministic function of the spec, spreading VNFs over
   the sites not excluded; falls back through sites on rejects. *)
let policy sp ~exclude =
  let place vnf salt =
    let rec pick k =
      if k >= num_sites then None
      else
        let site = (vnf + salt + k) mod num_sites in
        if List.mem (vnf, site) exclude then pick (k + 1) else Some site
    in
    pick 0
  in
  let mk salt w =
    let mids = List.map (fun v -> place v salt) sp.T.vnfs in
    if List.exists (fun s -> s = None) mids then None
    else
      Some
        (route ((0 :: List.map Option.get mids) @ [ num_sites - 1 ]) w)
  in
  match (mk 0 0.75, mk 1 0.25) with
  | Some a, Some b -> Some [ a; b ]
  | Some a, None -> Some [ { a with T.weight = 1.0 } ]
  | None, Some b -> Some [ { b with T.weight = 1.0 } ]
  | None, None -> None

(* The op soup: a deterministic op list from one integer seed, applied
   identically to both systems. `Burst` issues several updates
   back-to-back with no engine run between them — the first enters 2PC,
   the rest hit the queue and exercise Compile.compose. *)
type op =
  | Request of T.chain_spec
  | Update of int * int (* chain index, route salt *)
  | Burst of int * int list (* chain index, route salts *)
  | Scale of int * int (* vnf index, site *)
  | Run

let gen_ops seed =
  let rng = Rng.create seed in
  let nops = 4 + Rng.int rng 8 in
  let nchains = ref 0 in
  List.concat
    (List.init nops (fun _ ->
         match Rng.int rng 10 with
         | 0 | 1 | 2 ->
           let nvnfs = 1 + Rng.int rng 3 in
           let vnfs = List.init nvnfs (fun _ -> vnf_pool.(Rng.int rng 3)) in
           incr nchains;
           [ Request (spec ~traffic:(1. +. float_of_int (Rng.int rng 4)) "c" vnfs); Run ]
         | 3 | 4 | 5 when !nchains > 0 -> [ Update (Rng.int rng !nchains, Rng.int rng 97); Run ]
         | 6 | 7 when !nchains > 0 ->
           let n = 2 + Rng.int rng 3 in
           [ Burst (Rng.int rng !nchains, List.init n (fun _ -> Rng.int rng 97)); Run ]
         | 8 when !nchains > 0 -> [ Scale (Rng.int rng 3, Rng.int rng num_sites) ]
         | _ -> [ Run ]))

(* A route set variant for updates: reshuffle middle sites by salt. *)
let routes_for sys ~chain salt =
  match S.chain_spec sys ~chain with
  | None -> None
  | Some sp ->
    let mk salt w =
      route
        ((0 :: List.map (fun v -> (v + salt) mod num_sites) sp.T.vnfs)
        @ [ num_sites - 1 ])
        w
    in
    Some [ mk salt 0.5; mk (salt + 1) 0.5 ]

let apply_op sys chains op =
  match op with
  | Request sp -> chains := !chains @ [ S.request_chain sys sp ]
  | Update (ci, salt) -> (
    let chain = List.nth !chains ci in
    match routes_for sys ~chain salt with
    | Some routes -> S.update_routes sys ~chain routes
    | None -> ())
  | Burst (ci, salts) ->
    let chain = List.nth !chains ci in
    List.iter
      (fun salt ->
        match routes_for sys ~chain salt with
        | Some routes -> S.update_routes sys ~chain routes
        | None -> ())
      salts
  | Scale (vi, site) -> S.scale_vnf_instances sys ~vnf:vnf_pool.(vi) ~site ~count:1
  | Run -> E.run (S.engine sys)

let run_soup sys ops =
  let chains = ref [] in
  List.iter (apply_op sys chains) ops;
  E.run (S.engine sys);
  !chains

(* Compare everything observable about the two systems' final states. *)
let check_equivalent ~msg a b chains =
  Alcotest.(check int) (msg ^ ": quiesced a") 0 (S.txns_in_flight a);
  Alcotest.(check int) (msg ^ ": quiesced b") 0 (S.txns_in_flight b);
  List.iter
    (fun chain ->
      Alcotest.(check int)
        (Printf.sprintf "%s: chain %d same route count" msg chain)
        (List.length (S.chain_routes a ~chain))
        (List.length (S.chain_routes b ~chain));
      Alcotest.(check bool)
        (Printf.sprintf "%s: chain %d same routes" msg chain)
        true
        (S.chain_routes a ~chain = S.chain_routes b ~chain))
    chains;
  (* Control view: every site's installed-rule table. *)
  for site = 0 to num_sites - 1 do
    let ra = S.site_installed_rules a ~site and rb = S.site_installed_rules b ~site in
    Alcotest.(check bool)
      (Printf.sprintf "%s: site %d installed rules equal" msg site)
      true (ra = rb);
    (* Data plane: the packed rule arrays behind each installed key, on
       every forwarder of the site (tx and rx sides). *)
    List.iter
      (fun ((chain, egress, stage), _) ->
        List.iter
          (fun fwd ->
            let get sys sel =
              sel (S.shard sys) ~forwarder:fwd ~chain_label:chain
                ~egress_label:egress ~stage
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s: fwd %d rule c%d s%d equal" msg fwd chain stage)
              true
              (get a DP.rule = get b DP.rule);
            Alcotest.(check bool)
              (Printf.sprintf "%s: fwd %d rx rule c%d s%d equal" msg fwd chain stage)
              true
              (get a DP.rx_rule = get b DP.rx_rule))
          (S.site_forwarders a site))
      ra
  done;
  (* Probes: identical tuple streams must take identical paths and leave
     identical stage counters. *)
  let rng = Rng.create 7 in
  let tuples = Array.init 32 (fun _ -> Packet.random_tuple rng) in
  List.iter
    (fun chain ->
      Array.iter
        (fun tuple ->
          let ta = S.probe_chain a ~chain tuple and tb = S.probe_chain b ~chain tuple in
          Alcotest.(check bool)
            (Printf.sprintf "%s: chain %d trace equal" msg chain)
            true (ta = tb))
        tuples;
      Alcotest.(check bool)
        (Printf.sprintf "%s: chain %d stage counters equal" msg chain)
        true
        (S.chain_measurements a ~chain = S.chain_measurements b ~chain))
    chains

let equivalence_once ~flow_store seed =
  let ops = gen_ops seed in
  let a = build ~rollout:S.Delta_rollout ~flow_store in
  let b = build ~rollout:S.Full_rollout ~flow_store in
  S.set_route_policy a (policy : T.chain_spec -> exclude:(int * int) list -> T.route list option);
  S.set_route_policy b policy;
  let ca = run_soup a ops in
  let cb = run_soup b ops in
  Alcotest.(check (list int)) "same chain ids" cb ca;
  check_equivalent ~msg:(Printf.sprintf "seed %d" seed) a b ca;
  true

let prop_equivalence_local =
  QCheck.Test.make ~name:"delta rollout = full reinstall (Local store)" ~count:30
    QCheck.(int_range 0 1_000_000)
    (equivalence_once ~flow_store:DP.Local)

let prop_equivalence_replicated =
  QCheck.Test.make ~name:"delta rollout = full reinstall (Replicated 2)" ~count:10
    QCheck.(int_range 0 1_000_000)
    (equivalence_once ~flow_store:(DP.Replicated 2))

(* Queued-delta composition regression: three updates back-to-back — the
   first is in flight, the second queues, the third supersedes the queued
   one. The composed delta must carry BOTH updates' changed stages; a
   replace (the old queue semantics) would ship a delta missing the
   second update's stages and the per-site rules would diverge from the
   full-reinstall twin. *)
let test_queued_composition_regression () =
  let mk rollout =
    let sys = build ~rollout ~flow_store:DP.Local in
    S.set_route_policy sys policy;
    let chain = S.request_chain sys (spec "c" [ 7; 8 ]) in
    E.run (S.engine sys);
    (* Back-to-back: no engine run in between. *)
    List.iter
      (fun salt ->
        match routes_for sys ~chain salt with
        | Some routes -> S.update_routes sys ~chain routes
        | None -> assert false)
      [ 1; 2; 3 ];
    E.run (S.engine sys);
    (sys, chain)
  in
  let a, chain = mk S.Delta_rollout in
  let b, _ = mk S.Full_rollout in
  check_equivalent ~msg:"queued-composition" a b [ chain ];
  (* The delta path really was exercised: the final committed version is
     1 (create) + 2 (first update in flight, then the composed queued
     one) = 3 on every site that learned the chain. *)
  for site = 0 to num_sites - 1 do
    match S.site_chain_version a ~site ~chain with
    | Some v ->
      Alcotest.(check int) (Printf.sprintf "site %d at version 3" site) 3 v
    | None -> ()
  done

(* 2%-churn epoch: with 50 chains committed and 1 updated, the bytes the
   delta rollout puts on the wide area must be <= 5% of re-serializing
   the full rule set (a full-rollout epoch touching every chain) — the
   ISSUE acceptance bar. wan_bytes is the right meter: the retained full
   Route_update the delta mode keeps as a heal point has no subscribers
   and so never crosses the wide area. *)
let test_churn_bytes_ratio () =
  let with_chains rollout k =
    let sys = build ~rollout ~flow_store:DP.Local in
    S.set_route_policy sys policy;
    S.set_logging sys false;
    let chains =
      List.init 50 (fun i ->
          let c =
            S.request_chain sys (spec ~traffic:0.1 (Printf.sprintf "c%d" i) [ 7; 8; 9 ])
          in
          E.run (S.engine sys);
          c)
    in
    let bus = S.bus sys in
    Sb_msgbus.Bus.reset_stats bus;
    k sys chains;
    E.run (S.engine sys);
    (Sb_msgbus.Bus.stats bus).Sb_msgbus.Bus.wan_bytes
  in
  let update sys chain =
    match routes_for sys ~chain 1 with
    | Some routes -> S.update_routes sys ~chain routes
    | None -> assert false
  in
  (* Churn epoch under delta rollout: 1 of 50 chains updated. *)
  let delta =
    with_chains S.Delta_rollout (fun sys chains -> update sys (List.nth chains 7))
  in
  (* Full rule set: a full-rollout epoch re-serializing every chain. *)
  let full =
    with_chains S.Full_rollout (fun sys chains ->
        List.iter
          (fun c ->
            update sys c;
            E.run (S.engine sys))
          chains)
  in
  Alcotest.(check bool)
    (Printf.sprintf "2%%-churn delta bytes (%d) <= 5%% of full rule set (%d)" delta full)
    true
    (float_of_int delta <= 0.05 *. float_of_int full)

let () =
  Alcotest.run "sb_compile"
    [
      ( "compile",
        [
          Alcotest.test_case "sharing across chains" `Quick test_sharing_across_chains;
          Alcotest.test_case "suffix sharing" `Quick test_suffix_sharing;
          Alcotest.test_case "delta: changed stages only" `Quick
            test_delta_only_changed_stages;
          Alcotest.test_case "delta: full on vnf-set change" `Quick
            test_delta_full_on_vnf_set_change;
          Alcotest.test_case "compose merges stages" `Quick test_compose_merges_stages;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_equivalence_local;
          QCheck_alcotest.to_alcotest prop_equivalence_replicated;
          Alcotest.test_case "queued-delta composition" `Quick
            test_queued_composition_regression;
          Alcotest.test_case "2% churn ships <= 5% of full bytes" `Quick
            test_churn_bytes_ratio;
        ] );
    ]
