module Bus = Sb_msgbus.Bus
module Engine = Sb_sim.Engine
module BC = Sb_msgbus.Broadcast_compare

let delay50 s1 s2 = if s1 = s2 then 0. else 0.050

let make_bus ?(mode = Bus.Switchboard) ?(num_sites = 4) ?(egress_rate = 20_000.)
    ?(buffer = 64) () =
  let eng = Engine.create () in
  let bus = Bus.create eng ~mode ~num_sites ~delay:delay50 ~egress_rate ~buffer () in
  (eng, bus)

let test_basic_delivery () =
  let eng, bus = make_bus () in
  let got = ref [] in
  Bus.subscribe bus ~site:1 ~topic:"/t" (fun v -> got := v :: !got);
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" 42));
  Engine.run eng;
  Alcotest.(check (list int)) "payload delivered" [ 42 ] !got

let test_delivery_latency_is_wan_delay () =
  let eng, bus = make_bus () in
  let at = ref nan in
  Bus.subscribe bus ~site:1 ~topic:"/t" (fun () -> at := Engine.now eng);
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" ()));
  Engine.run eng;
  (* 1s publish + serialization (1/rate) + 50 ms WAN. *)
  Alcotest.(check (float 1e-3)) "arrival time" 1.0505 !at

let test_local_delivery_fast () =
  let eng, bus = make_bus () in
  let at = ref nan in
  Bus.subscribe bus ~site:0 ~topic:"/t" (fun () -> at := Engine.now eng);
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" ()));
  Engine.run eng;
  Alcotest.(check bool) "local delivery < 5 ms" true (!at -. 1.0 < 0.005)

let test_no_subscriber_no_wan_message () =
  let eng, bus = make_bus () in
  Bus.subscribe bus ~site:1 ~topic:"/other" (fun () -> ());
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" ()));
  Engine.run eng;
  let s = Bus.stats bus in
  Alcotest.(check int) "no wide-area copies" 0 s.Bus.wan_messages;
  Alcotest.(check int) "nothing delivered" 0 s.Bus.delivered

let test_one_wan_copy_per_site () =
  let eng, bus = make_bus ~num_sites:5 () in
  (* 3 subscribers at site 1, 2 at site 2 -> exactly 2 WAN messages. *)
  let count = ref 0 in
  for _ = 1 to 3 do
    Bus.subscribe bus ~site:1 ~topic:"/t" (fun () -> incr count)
  done;
  for _ = 1 to 2 do
    Bus.subscribe bus ~site:2 ~topic:"/t" (fun () -> incr count)
  done;
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" ()));
  Engine.run eng;
  let s = Bus.stats bus in
  Alcotest.(check int) "2 WAN copies" 2 s.Bus.wan_messages;
  Alcotest.(check int) "5 deliveries" 5 !count

(* Regression (pinned by the sb_chaos single-copy invariant): with
   multi-site subscription filters in place, every publish crosses each
   wide-area link at most once and reaches exactly the remote subscribing
   sites — one copy per site, none to non-subscribers. Counted at the
   egress fault hook, which sees every wide-area copy exactly once. *)
let test_single_wan_copy_per_link () =
  let eng, bus = make_bus ~num_sites:6 () in
  (* Overlapping filters: "/a" at sites {1,2} (site 1 thrice), "/b" at
     sites {2,4}. *)
  for _ = 1 to 3 do
    Bus.subscribe bus ~site:1 ~topic:"/a" (fun () -> ())
  done;
  Bus.subscribe bus ~site:2 ~topic:"/a" (fun () -> ());
  Bus.subscribe bus ~site:2 ~topic:"/b" (fun () -> ());
  Bus.subscribe bus ~site:4 ~topic:"/b" (fun () -> ());
  let copies = Hashtbl.create 64 in
  let seen_msgs = Hashtbl.create 16 in
  Bus.set_wan_hook bus (fun ~msg ~topic ~src ~dst ->
      Hashtbl.replace seen_msgs msg ();
      let k = (msg, src, dst) in
      Hashtbl.replace copies k (1 + (try Hashtbl.find copies k with Not_found -> 0));
      if not (List.mem dst (Bus.subscriber_sites bus ~topic)) then
        Alcotest.failf "msg %d sent to non-subscribing site %d (topic %s)" msg dst topic;
      if dst = src then Alcotest.failf "msg %d looped back to its source site" msg;
      Bus.Deliver);
  (* Ten publishes from rotating sites, alternating topics. *)
  for i = 0 to 9 do
    ignore
      (Engine.schedule eng
         ~delay:(0.1 *. float_of_int (i + 1))
         (fun () ->
           Bus.publish bus ~site:(i mod 3) ~topic:(if i mod 2 = 0 then "/a" else "/b") ()))
  done;
  Engine.run eng;
  Hashtbl.iter
    (fun (msg, src, dst) n ->
      if n > 1 then Alcotest.failf "msg %d crossed link %d->%d %d times" msg src dst n)
    copies;
  (* One copy per remote subscribing site: sums to 16 over the workload
     ("/a" from {0,1,2}: 2+1+1 copies; "/b" from {0,1,2}: 2+2+1). *)
  let total = Hashtbl.fold (fun _ n acc -> acc + n) copies 0 in
  Alcotest.(check int) "exact wide-area copy count" 16 total;
  Alcotest.(check int) "every publish produced wide-area copies" 10
    (Hashtbl.length seen_msgs);
  Alcotest.(check int) "stats agree with the hook" 16 (Bus.stats bus).Bus.wan_messages

let test_full_mesh_copy_per_subscriber () =
  let eng, bus = make_bus ~mode:Bus.Full_mesh ~num_sites:5 () in
  for _ = 1 to 3 do
    Bus.subscribe bus ~site:1 ~topic:"/t" (fun () -> ())
  done;
  for _ = 1 to 2 do
    Bus.subscribe bus ~site:2 ~topic:"/t" (fun () -> ())
  done;
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" ()));
  Engine.run eng;
  let s = Bus.stats bus in
  Alcotest.(check int) "5 WAN copies" 5 s.Bus.wan_messages

let test_retained_replay () =
  let eng, bus = make_bus () in
  let got = ref [] in
  (* Publish first, subscribe later: retained value is replayed. *)
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" 7));
  ignore
    (Engine.schedule eng ~delay:2. (fun () ->
         Bus.subscribe bus ~site:1 ~topic:"/t" (fun v -> got := v :: !got)));
  Engine.run eng;
  Alcotest.(check (list int)) "retained replayed" [ 7 ] !got

let test_retained_keeps_last_value () =
  let eng, bus = make_bus () in
  let got = ref [] in
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" 1));
  ignore (Engine.schedule eng ~delay:2. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" 2));
  ignore
    (Engine.schedule eng ~delay:3. (fun () ->
         Bus.subscribe bus ~site:1 ~topic:"/t" (fun v -> got := v :: !got)));
  Engine.run eng;
  Alcotest.(check (list int)) "last value only" [ 2 ] !got

let test_publish_during_filter_flight () =
  (* Subscribe at t=1 from a remote site; publish at t=1.01 (< filter
     install): the message must still arrive (replay semantics). *)
  let eng, bus = make_bus () in
  let got = ref 0 in
  ignore
    (Engine.schedule eng ~delay:1. (fun () ->
         Bus.subscribe bus ~site:1 ~topic:"/t" (fun () -> incr got)));
  ignore (Engine.schedule eng ~delay:1.01 (fun () -> Bus.publish bus ~site:0 ~topic:"/t" ()));
  Engine.run eng;
  Alcotest.(check bool) "delivered at least once" true (!got >= 1)

let test_drops_on_buffer_overflow () =
  let eng, bus = make_bus ~egress_rate:10. ~buffer:4 () in
  Bus.subscribe bus ~site:1 ~topic:"/t" (fun () -> ());
  ignore
    (Engine.schedule eng ~delay:1. (fun () ->
         for _ = 1 to 100 do
           Bus.publish bus ~site:0 ~topic:"/t" ()
         done));
  Engine.run eng;
  let s = Bus.stats bus in
  Alcotest.(check bool) "drops occur" true (s.Bus.dropped > 0);
  Alcotest.(check int) "conservation" 100 (s.Bus.wan_messages + s.Bus.dropped)

let test_queueing_latency_under_load () =
  let eng, bus = make_bus ~egress_rate:100. ~buffer:1000 () in
  Bus.subscribe bus ~site:1 ~topic:"/t" (fun () -> ());
  ignore
    (Engine.schedule eng ~delay:1. (fun () ->
         for _ = 1 to 200 do
           Bus.publish bus ~site:0 ~topic:"/t" ()
         done));
  Engine.run eng;
  let s = Bus.stats bus in
  let lat = Sb_util.Stats.percentile 90. s.Bus.latencies in
  (* 200 messages at 100/s: the tail waits ~2 s. *)
  Alcotest.(check bool) "queueing visible in tail latency" true (lat > 1.0)

let test_latency_reservoir_bounded () =
  (* Push well past the reservoir capacity: memory stays bounded, the
     total count keeps the true tally, and the retained sample is a
     deterministic function of the delivery sequence. *)
  let run () =
    let eng, bus = make_bus ~num_sites:2 ~egress_rate:1e9 ~buffer:1_000_000 () in
    Bus.subscribe bus ~site:1 ~topic:"/t" (fun () -> ());
    for i = 0 to 19_999 do
      ignore
        (Engine.schedule eng
           ~delay:(1. +. (1e-4 *. float_of_int i))
           (fun () -> Bus.publish bus ~site:0 ~topic:"/t" ()))
    done;
    Engine.run eng;
    Bus.stats bus
  in
  let s1 = run () in
  Alcotest.(check int) "all samples counted" 20_000 s1.Bus.latency_count;
  Alcotest.(check int) "reservoir capped" 16_384 (List.length s1.Bus.latencies);
  let s2 = run () in
  Alcotest.(check bool) "retained sample deterministic" true
    (s1.Bus.latencies = s2.Bus.latencies)

let test_stats_reset () =
  let eng, bus = make_bus () in
  Bus.subscribe bus ~site:1 ~topic:"/t" (fun () -> ());
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" ()));
  Engine.run eng;
  Bus.reset_stats bus;
  let s = Bus.stats bus in
  Alcotest.(check int) "published reset" 0 s.Bus.published;
  Alcotest.(check int) "delivered reset" 0 s.Bus.delivered

let test_subscriber_sites () =
  let _, bus = make_bus ~num_sites:6 () in
  Bus.subscribe bus ~site:3 ~topic:"/t" (fun () -> ());
  Bus.subscribe bus ~site:1 ~topic:"/t" (fun () -> ());
  Bus.subscribe bus ~site:3 ~topic:"/t" (fun () -> ());
  Alcotest.(check (list int)) "distinct sorted sites" [ 1; 3 ]
    (Bus.subscriber_sites bus ~topic:"/t")


let test_reflector_floods_all_sites () =
  (* 6 sites, reflector at 5, subscribers only at site 1: publish from 0
     still produces 1 (to reflector) + 5 (flood) WAN messages. *)
  let eng, bus = make_bus ~mode:(Bus.Route_reflector 5) ~num_sites:6 () in
  Bus.subscribe bus ~site:1 ~topic:"/t" (fun () -> ());
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" ()));
  Engine.run eng;
  let s = Bus.stats bus in
  Alcotest.(check int) "floods every site" 6 s.Bus.wan_messages;
  Alcotest.(check int) "subscriber still served" 1 s.Bus.delivered

let test_reflector_two_hop_latency () =
  let eng, bus = make_bus ~mode:(Bus.Route_reflector 2) ~num_sites:4 () in
  let at = ref nan in
  Bus.subscribe bus ~site:1 ~topic:"/t" (fun () -> at := Engine.now eng);
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" ()));
  Engine.run eng;
  (* publisher -> reflector -> subscriber: two 50 ms hops + 2 serializations. *)
  Alcotest.(check (float 2e-3)) "two-hop delivery" 1.1001 !at

let test_reflector_bottleneck_vs_switchboard () =
  (* High publish rate from many sites: the single reflector's egress
     saturates long before Switchboard's per-site filters do. *)
  let run mode =
    let eng = Engine.create () in
    let bus = Bus.create eng ~mode ~num_sites:6 ~delay:delay50 ~egress_rate:500. ~buffer:10_000 () in
    Bus.subscribe bus ~site:1 ~topic:"/t" (fun () -> ());
    for i = 0 to 999 do
      ignore
        (Engine.schedule eng
           ~delay:(1. +. (0.002 *. float_of_int i))
           (fun () -> Bus.publish bus ~site:(2 + (i mod 4)) ~topic:"/t" ()))
    done;
    Engine.run eng;
    Sb_util.Stats.median (Bus.stats bus).Bus.latencies
  in
  let sb = run Bus.Switchboard in
  let rr = run (Bus.Route_reflector 0) in
  Alcotest.(check bool)
    (Printf.sprintf "reflector queues (rr %.3f vs sb %.3f)" rr sb)
    true (rr > 2. *. sb)

(* ----------------- Fig. 9 comparison (shape checks) ----------------- *)

let small_setup =
  { BC.default_setup with BC.num_sites = 6; subscribers_per_site = 6; duration = 5. }

let test_fig9_switchboard_saturates_later () =
  (* At a rate full-mesh cannot sustain, Switchboard still delivers. *)
  let rate = 150. in
  let sb = BC.run small_setup ~mode:Bus.Switchboard ~rate in
  let fm = BC.run small_setup ~mode:Bus.Full_mesh ~rate in
  Alcotest.(check bool) "SB goodput ~ offered" true (sb.BC.goodput > 0.95 *. rate);
  Alcotest.(check bool) "FM goodput collapses" true (fm.BC.goodput < 0.6 *. rate);
  Alcotest.(check bool) "FM drops" true (fm.BC.drop_fraction > 0.2);
  Alcotest.(check bool) "SB no drops" true (sb.BC.drop_fraction = 0.)

let test_fig9_latency_gap () =
  let rate = 150. in
  let sb = BC.run small_setup ~mode:Bus.Switchboard ~rate in
  let fm = BC.run small_setup ~mode:Bus.Full_mesh ~rate in
  Alcotest.(check bool) "order-of-magnitude latency gap" true
    (fm.BC.median_latency > 5. *. sb.BC.median_latency)

let test_fig9_wan_message_ratio () =
  let rate = 20. in
  let sb = BC.run small_setup ~mode:Bus.Switchboard ~rate in
  let fm = BC.run small_setup ~mode:Bus.Full_mesh ~rate in
  (* Full-mesh sends subscribers_per_site times more WAN messages. *)
  let ratio = float_of_int fm.BC.wan_messages /. float_of_int sb.BC.wan_messages in
  Alcotest.(check (float 0.5)) "message multiplicity" 6. ratio

let prop_delivery_count =
  QCheck.Test.make ~name:"every visible subscriber gets every message exactly once" ~count:30
    QCheck.(pair (int_range 1 5) (int_range 1 20))
    (fun (nsub_sites, nmsgs) ->
      let eng = Engine.create () in
      let bus =
        Bus.create eng ~mode:Bus.Switchboard ~num_sites:(nsub_sites + 1) ~delay:delay50
          ~egress_rate:1e6 ~buffer:100_000 ()
      in
      let counts = Array.make nsub_sites 0 in
      for s = 0 to nsub_sites - 1 do
        Bus.subscribe bus ~site:(s + 1) ~topic:"/t" (fun () -> counts.(s) <- counts.(s) + 1)
      done;
      for i = 1 to nmsgs do
        ignore
          (Engine.schedule eng ~delay:(1. +. float_of_int i) (fun () ->
               Bus.publish bus ~site:0 ~topic:"/t" ()))
      done;
      Engine.run eng;
      Array.for_all (fun c -> c = nmsgs) counts)

(* ----------------------- bytes-on-wire accounting -------------------- *)

let make_sized_bus ?bandwidth ?(topic_key = fun t -> t) ?(num_sites = 4) () =
  let eng = Engine.create () in
  let bus =
    Bus.create eng ~mode:Bus.Switchboard ~num_sites ~delay:delay50 ?bandwidth
      ~size_fn:String.length ~topic_key ()
  in
  (eng, bus)

let test_bytes_accounting () =
  let eng, bus = make_sized_bus () in
  (* One local subscriber and two remote sites: published once, two WAN
     copies — wan_bytes counts each wide-area copy. *)
  Bus.subscribe bus ~site:0 ~topic:"/t" (fun _ -> ());
  Bus.subscribe bus ~site:1 ~topic:"/t" (fun _ -> ());
  Bus.subscribe bus ~site:2 ~topic:"/t" (fun _ -> ());
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" "hello"));
  Engine.run eng;
  let s = Bus.stats bus in
  Alcotest.(check int) "published bytes" 5 s.Bus.published_bytes;
  Alcotest.(check int) "wan bytes = 2 copies" 10 s.Bus.wan_bytes;
  Alcotest.(check int) "size observations" 1 s.Bus.size_count;
  Alcotest.(check (list int)) "size reservoir" [ 5 ] s.Bus.sizes;
  Alcotest.(check (list (triple string int int)))
    "per-topic bytes"
    [ ("/t", 1, 5) ]
    s.Bus.topic_bytes

let test_topic_key_collapses_classes () =
  let key t = if String.length t >= 2 then String.sub t 0 2 else t in
  let eng, bus = make_sized_bus ~topic_key:key () in
  Bus.subscribe bus ~site:1 ~topic:"/a/1" (fun _ -> ());
  Bus.subscribe bus ~site:1 ~topic:"/a/2" (fun _ -> ());
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/a/1" "xx"));
  ignore (Engine.schedule eng ~delay:2. (fun () -> Bus.publish bus ~site:0 ~topic:"/a/2" "yyy"));
  Engine.run eng;
  let s = Bus.stats bus in
  Alcotest.(check (list (triple string int int)))
    "one class, summed"
    [ ("/a", 2, 5) ]
    s.Bus.topic_bytes

let test_bandwidth_prices_serialization () =
  (* bandwidth = 100 B/s and a 50 B payload: serialization is 0.5 s
     instead of the flat 1/egress_rate. Arrival = 1 (publish) + 0.5
     (serialize) + 0.05 (WAN). *)
  let eng, bus = make_sized_bus ~bandwidth:100. () in
  let at = ref nan in
  Bus.subscribe bus ~site:1 ~topic:"/t" (fun _ -> at := Engine.now eng);
  ignore
    (Engine.schedule eng ~delay:1. (fun () ->
         Bus.publish bus ~site:0 ~topic:"/t" (String.make 50 'x')));
  Engine.run eng;
  Alcotest.(check (float 1e-3)) "size-proportional arrival" 1.55 !at

let test_bytes_reset () =
  let eng, bus = make_sized_bus () in
  Bus.subscribe bus ~site:1 ~topic:"/t" (fun _ -> ());
  ignore (Engine.schedule eng ~delay:1. (fun () -> Bus.publish bus ~site:0 ~topic:"/t" "abc"));
  Engine.run eng;
  Bus.reset_stats bus;
  let s = Bus.stats bus in
  Alcotest.(check int) "published bytes reset" 0 s.Bus.published_bytes;
  Alcotest.(check int) "wan bytes reset" 0 s.Bus.wan_bytes;
  Alcotest.(check int) "size count reset" 0 s.Bus.size_count;
  Alcotest.(check (list (triple string int int))) "classes reset" [] s.Bus.topic_bytes

let () =
  Alcotest.run "sb_msgbus"
    [
      ( "bus",
        [
          Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
          Alcotest.test_case "WAN delivery latency" `Quick test_delivery_latency_is_wan_delay;
          Alcotest.test_case "local delivery fast" `Quick test_local_delivery_fast;
          Alcotest.test_case "no subscriber, no WAN copy" `Quick test_no_subscriber_no_wan_message;
          Alcotest.test_case "one WAN copy per site" `Quick test_one_wan_copy_per_site;
          Alcotest.test_case "single WAN copy per link (regression)" `Quick
            test_single_wan_copy_per_link;
          Alcotest.test_case "full mesh per subscriber" `Quick
            test_full_mesh_copy_per_subscriber;
          Alcotest.test_case "retained replay" `Quick test_retained_replay;
          Alcotest.test_case "retained keeps last" `Quick test_retained_keeps_last_value;
          Alcotest.test_case "publish during filter flight" `Quick
            test_publish_during_filter_flight;
          Alcotest.test_case "buffer overflow drops" `Quick test_drops_on_buffer_overflow;
          Alcotest.test_case "queueing latency" `Quick test_queueing_latency_under_load;
          Alcotest.test_case "latency reservoir bounded" `Quick
            test_latency_reservoir_bounded;
          Alcotest.test_case "stats reset" `Quick test_stats_reset;
          Alcotest.test_case "subscriber sites" `Quick test_subscriber_sites;
          Alcotest.test_case "reflector floods all sites" `Quick
            test_reflector_floods_all_sites;
          Alcotest.test_case "reflector two-hop latency" `Quick test_reflector_two_hop_latency;
          Alcotest.test_case "reflector bottleneck" `Quick
            test_reflector_bottleneck_vs_switchboard;
        ] );
      ( "fig9",
        [
          Alcotest.test_case "SB saturates later" `Slow test_fig9_switchboard_saturates_later;
          Alcotest.test_case "latency gap" `Slow test_fig9_latency_gap;
          Alcotest.test_case "WAN message ratio" `Quick test_fig9_wan_message_ratio;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "bytes on the wire" `Quick test_bytes_accounting;
          Alcotest.test_case "topic classes" `Quick test_topic_key_collapses_classes;
          Alcotest.test_case "bandwidth serialization" `Quick
            test_bandwidth_prices_serialization;
          Alcotest.test_case "bytes reset" `Quick test_bytes_reset;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_delivery_count ]);
    ]
