module S = Sb_ctrl.System
module T = Sb_ctrl.Types
module E = Sb_sim.Engine
module Fabric = Sb_dataplane.Fabric
module Packet = Sb_dataplane.Packet

let delay30 a b = if a = b then 0. else 0.030

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0


(* Two sites with a NAT (vnf 7) at each; edge at both; route policy prefers
   site 0, retreating to site 1 when 2PC rejects it. *)
let build_two_sites ?(capacity0 = 10.) () =
  let sys = S.create ~num_sites:2 ~delay:delay30 ~gsb_site:0 () in
  S.deploy_vnf sys ~vnf:7 ~site:0 ~capacity:capacity0 ~instances:2;
  S.deploy_vnf sys ~vnf:7 ~site:1 ~capacity:10. ~instances:2;
  S.register_edge sys ~site:0 ~attachment:"office-A";
  S.register_edge sys ~site:1 ~attachment:"office-B";
  S.set_route_policy sys (fun _spec ~exclude ->
      if List.mem (7, 0) exclude then
        Some [ { T.element_sites = [| 0; 1; 1 |]; weight = 1.0 } ]
      else Some [ { T.element_sites = [| 0; 0; 1 |]; weight = 1.0 } ]);
  sys

let nat_spec ?(traffic = 5.0) name =
  {
    T.spec_name = name;
    ingress_attachment = "office-A";
    egress_attachment = "office-B";
    vnfs = [ 7 ];
    traffic;
  }

let test_chain_creation_end_to_end () =
  let sys = build_two_sites () in
  let chain = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  Alcotest.(check int) "one route committed" 1 (List.length (S.chain_routes sys ~chain));
  Alcotest.(check (option int)) "ingress resolved" (Some 0) (S.chain_ingress_site sys ~chain);
  Alcotest.(check (option int)) "egress resolved" (Some 1) (S.chain_egress_site sys ~chain)

let test_chain_dataplane_works () =
  let sys = build_two_sites () in
  let chain = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  let tuple = Packet.random_tuple (Sb_util.Rng.create 1) in
  match S.probe_chain sys ~chain tuple with
  | Ok trace ->
    Alcotest.(check (list int)) "conformity via control plane" [ 7 ]
      (Fabric.vnfs_in_trace (S.fabric sys) trace)
  | Error e -> Alcotest.failf "probe failed: %a" Fabric.pp_error e

let test_chain_creation_latency_sub_second () =
  let sys = build_two_sites () in
  let _ = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  (* All rule installs complete within a second of simulated time (paper
     Section 7.1 reports sub-second chain operations). *)
  Alcotest.(check bool) "completes within 1 s" true (E.now (S.engine sys) < 1.0)

let test_admission_accounting () =
  let sys = build_two_sites () in
  let _ = S.request_chain sys (nat_spec ~traffic:4. "c") in
  E.run (S.engine sys);
  Alcotest.(check (float 1e-9)) "vnf7@site0 committed" 4. (S.vnf_committed_load sys ~vnf:7 ~site:0);
  Alcotest.(check (float 1e-9)) "site1 untouched" 0. (S.vnf_committed_load sys ~vnf:7 ~site:1)

let test_2pc_reject_triggers_recompute () =
  (* Site 0's NAT has capacity 3 < traffic 5: prepare must be rejected and
     the chain placed at site 1. *)
  let sys = build_two_sites ~capacity0:3. () in
  let chain = S.request_chain sys (nat_spec ~traffic:5. "c") in
  E.run (S.engine sys);
  (match S.chain_routes sys ~chain with
  | [ r ] -> Alcotest.(check int) "VNF moved to site 1" 1 r.T.element_sites.(1)
  | rs -> Alcotest.failf "expected one route, got %d" (List.length rs));
  Alcotest.(check (float 1e-9)) "no load at rejected site" 0.
    (S.vnf_committed_load sys ~vnf:7 ~site:0);
  Alcotest.(check (float 1e-9)) "load at accepted site" 5.
    (S.vnf_committed_load sys ~vnf:7 ~site:1);
  (* The log shows an abort followed by a commit. *)
  let log = List.map snd (S.log sys) in
  Alcotest.(check bool) "abort logged" true
    (List.exists (fun s -> contains s "abort") log)

let test_2pc_atomicity_no_partial_commit () =
  (* Unsatisfiable everywhere: no routes committed, no load anywhere. *)
  let sys = build_two_sites ~capacity0:3. () in
  let chain = S.request_chain sys (nat_spec ~traffic:50. "c") in
  E.run (S.engine sys);
  Alcotest.(check int) "no route" 0 (List.length (S.chain_routes sys ~chain));
  Alcotest.(check (float 1e-9)) "site0 clean" 0. (S.vnf_committed_load sys ~vnf:7 ~site:0);
  Alcotest.(check (float 1e-9)) "site1 clean" 0. (S.vnf_committed_load sys ~vnf:7 ~site:1)

let test_two_chains_share_capacity () =
  let sys = build_two_sites () in
  let c1 = S.request_chain sys (nat_spec ~traffic:6. "c1") in
  E.run (S.engine sys);
  let c2 = S.request_chain sys (nat_spec ~traffic:6. "c2") in
  E.run (S.engine sys);
  (* Site 0 capacity 10: c1 fits (6), c2 (6) must go to site 1. *)
  (match S.chain_routes sys ~chain:c1 with
  | [ r ] -> Alcotest.(check int) "c1 at site 0" 0 r.T.element_sites.(1)
  | _ -> Alcotest.fail "c1 route missing");
  match S.chain_routes sys ~chain:c2 with
  | [ r ] -> Alcotest.(check int) "c2 pushed to site 1" 1 r.T.element_sites.(1)
  | _ -> Alcotest.fail "c2 route missing"

let test_add_route_doubles_capacity () =
  let sys = build_two_sites () in
  let chain = S.request_chain sys (nat_spec ~traffic:5. "c") in
  E.run (S.engine sys);
  S.add_route sys ~chain { T.element_sites = [| 0; 1; 1 |]; weight = 0.5 };
  E.run (S.engine sys);
  Alcotest.(check int) "two routes" 2 (List.length (S.chain_routes sys ~chain));
  (* Load rebalanced: half on each site. *)
  Alcotest.(check (float 1e-9)) "half at site 0" 2.5 (S.vnf_committed_load sys ~vnf:7 ~site:0);
  Alcotest.(check (float 1e-9)) "half at site 1" 2.5 (S.vnf_committed_load sys ~vnf:7 ~site:1)

let test_add_route_update_latency () =
  let sys = build_two_sites () in
  let chain = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  let t0 = E.now (S.engine sys) in
  S.add_route sys ~chain { T.element_sites = [| 0; 1; 1 |]; weight = 0.5 };
  E.run (S.engine sys);
  let elapsed = E.now (S.engine sys) -. t0 in
  (* Fig. 10a: route update completes in well under a second. *)
  Alcotest.(check bool) "route update < 1 s" true (elapsed < 1.0);
  Alcotest.(check bool) "route update takes real message rounds" true (elapsed > 0.05)

let test_existing_flows_survive_route_addition () =
  let sys = build_two_sites () in
  let chain = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  let tuple = Packet.random_tuple (Sb_util.Rng.create 2) in
  let before =
    match S.probe_chain sys ~chain tuple with
    | Ok trace -> Fabric.instances_in_trace trace
    | Error e -> Alcotest.failf "probe: %a" Fabric.pp_error e
  in
  S.add_route sys ~chain { T.element_sites = [| 0; 1; 1 |]; weight = 0.5 };
  E.run (S.engine sys);
  (match S.probe_chain sys ~chain tuple with
  | Ok trace ->
    Alcotest.(check (list int)) "flow affinity across route update" before
      (Fabric.instances_in_trace trace)
  | Error e -> Alcotest.failf "probe after update: %a" Fabric.pp_error e);
  (* New connections can land on the new route's instances eventually. *)
  let rng = Sb_util.Rng.create 3 in
  let saw_site1 = ref false in
  for _ = 1 to 50 do
    match S.probe_chain sys ~chain (Packet.random_tuple rng) with
    | Ok trace ->
      List.iter
        (fun i ->
          if
            Fabric.instance_vnf (S.fabric sys) i = 7
            && Fabric.forwarder_site (S.fabric sys) (S.site_forwarder sys 1)
               = Fabric.instance_site (S.fabric sys) i
          then saw_site1 := true)
        (Fabric.instances_in_trace trace)
    | Error _ -> ()
  done;
  Alcotest.(check bool) "new flows reach new route" true !saw_site1


(* ------------------------- elastic scaling ------------------------- *)

let test_add_forwarder_replays_rules () =
  let sys = build_two_sites () in
  let chain = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  let fwd = S.add_forwarder sys ~site:0 in
  E.run (S.engine sys);
  Alcotest.(check int) "two forwarders at site 0" 2
    (List.length (S.site_forwarders sys 0));
  (* The new forwarder carries the site's rules. *)
  (match
     Fabric.rule (S.fabric sys) ~forwarder:fwd ~chain_label:chain ~egress_label:1 ~stage:0
   with
  | Some targets -> Alcotest.(check bool) "rule replayed" true (targets <> [])
  | None -> Alcotest.fail "new forwarder missing the chain rule");
  (* The data plane still works end to end. *)
  match S.probe_chain sys ~chain (Packet.random_tuple (Sb_util.Rng.create 5)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "probe after scale-out: %a" Fabric.pp_error e

let test_scale_instances_rebalances_new_flows () =
  let sys = build_two_sites () in
  let chain = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  (* Remember an established connection's instances. *)
  let tuple = Packet.random_tuple (Sb_util.Rng.create 6) in
  let before =
    match S.probe_chain sys ~chain tuple with
    | Ok tr -> Fabric.instances_in_trace tr
    | Error e -> Alcotest.failf "probe: %a" Fabric.pp_error e
  in
  let fab = S.fabric sys in
  let existing_instances = Hashtbl.create 8 in
  List.iter (fun i -> Hashtbl.replace existing_instances i ()) before;
  S.scale_vnf_instances sys ~vnf:7 ~site:0 ~count:2;
  E.run (S.engine sys);
  (* Existing connection is pinned (flow affinity). *)
  (match S.probe_chain sys ~chain tuple with
  | Ok tr ->
    Alcotest.(check (list int)) "affinity across scaling" before
      (Fabric.instances_in_trace tr)
  | Error e -> Alcotest.failf "probe after scaling: %a" Fabric.pp_error e);
  (* New connections eventually use a new instance. *)
  let rng = Sb_util.Rng.create 7 in
  let saw_new = ref false in
  for _ = 1 to 80 do
    match S.probe_chain sys ~chain (Packet.random_tuple rng) with
    | Ok tr ->
      List.iter
        (fun i ->
          if Fabric.instance_vnf fab i = 7 && not (Hashtbl.mem existing_instances i) then
            saw_new := true)
        (Fabric.instances_in_trace tr)
    | Error _ -> ()
  done;
  Alcotest.(check bool) "new instances absorb new connections" true !saw_new

let test_scale_requires_deployment () =
  let sys = build_two_sites () in
  Alcotest.check_raises "unknown vnf"
    (Invalid_argument "System.scale_vnf_instances: unknown vnf") (fun () ->
      S.scale_vnf_instances sys ~vnf:99 ~site:0 ~count:1)

let test_instances_spread_over_forwarders () =
  let sys = build_two_sites () in
  let _chain = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  ignore (S.add_forwarder sys ~site:0);
  E.run (S.engine sys);
  S.scale_vnf_instances sys ~vnf:7 ~site:0 ~count:4;
  E.run (S.engine sys);
  let fab = S.fabric sys in
  let used =
    S.site_forwarders sys 0
    |> List.filter (fun f -> Fabric.attached_instances fab ~forwarder:f <> [])
  in
  Alcotest.(check int) "both forwarders proxy instances" 2 (List.length used)


(* --------------------------- telemetry ----------------------------- *)

let test_chain_measurements () =
  let sys = build_two_sites () in
  let chain = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  let rng = Sb_util.Rng.create 21 in
  for _ = 1 to 25 do
    match S.probe_chain sys ~chain (Packet.random_tuple rng) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "probe: %a" Fabric.pp_error e
  done;
  let stages = S.chain_measurements sys ~chain in
  Alcotest.(check int) "two stages measured" 2 (Array.length stages);
  Array.iteri
    (fun z (pkts, bytes) ->
      Alcotest.(check int) (Printf.sprintf "stage %d packets" z) 25 pkts;
      Alcotest.(check int) (Printf.sprintf "stage %d bytes" z) (25 * 500) bytes)
    stages;
  S.reset_measurements sys;
  let pkts, _ = (S.chain_measurements sys ~chain).(0) in
  Alcotest.(check int) "window reset" 0 pkts

let test_measurements_unknown_chain () =
  let sys = build_two_sites () in
  Alcotest.(check int) "no data for unknown chain" 0
    (Array.length (S.chain_measurements sys ~chain:99))


(* --------------------- controller fault tolerance ------------------ *)

let test_gsb_failover_recovers_chains () =
  (* Primary GSB persists committed chains into a 3-replica MUSIC store;
     then it "fails" (we discard the System). A standby with the same
     infrastructure acquires the leader lease, recovers the chains from
     the store, and the data plane serves the recovered chain. *)
  let store_of sys =
    Sb_music.Store.create (S.engine sys) ~replica_sites:[ 0; 1; 1 ] ~delay:delay30
  in
  (* Primary. *)
  let primary = build_two_sites () in
  let store_p = store_of primary in
  S.attach_store primary store_p;
  let c0 = S.request_chain primary (nat_spec "c0") in
  E.run (S.engine primary);
  let c1 = S.request_chain primary (nat_spec ~traffic:2. "c1") in
  E.run (S.engine primary);
  let routes_before = (S.chain_routes primary ~chain:c0, S.chain_routes primary ~chain:c1) in
  Alcotest.(check bool) "chains persisted" true
    (List.exists (fun (_, m) -> contains m "persisted to MUSIC") (S.log primary));
  (* Extract the replicated state: in a real deployment the store survives
     the controller; here we replay the primary's puts into a store bound
     to the standby's engine (the store contents are what matter). *)
  let standby = build_two_sites () in
  let store_s = store_of standby in
  S.attach_store standby store_s;
  (* Rebuild the store contents by re-running the same committed workload
     writes: copy via get/put bridge from primary's store. *)
  let copied = ref 0 in
  List.iter
    (fun key ->
      Sb_music.Store.get store_p ~from:0 ~key (fun v ->
          match v with
          | Some payload ->
            Sb_music.Store.put store_s ~from:0 ~key payload (fun _ -> incr copied)
          | None -> ()))
    [ "chains/index"; "chain/0"; "chain/1" ];
  E.run (S.engine primary);
  E.run (S.engine standby);
  Alcotest.(check int) "replicated state copied" 3 !copied;
  (* Standby takes the leader lease, then recovers. *)
  let lease_ok = ref false in
  Sb_music.Store.acquire_lease store_s ~from:0 ~key:"gsb-leader" ~owner:"standby"
    ~duration:30. (fun ok -> lease_ok := ok);
  E.run (S.engine standby);
  Alcotest.(check bool) "standby holds the lease" true !lease_ok;
  let recovered = ref [] in
  S.recover_from_store standby store_s ~on_done:(fun ids -> recovered := ids);
  E.run (S.engine standby);
  Alcotest.(check (list int)) "both chains recovered" [ c0; c1 ] !recovered;
  Alcotest.(check bool) "routes match" true
    ((S.chain_routes standby ~chain:c0, S.chain_routes standby ~chain:c1) = routes_before);
  (* The standby's data plane carries traffic for the recovered chain. *)
  match S.probe_chain standby ~chain:c0 (Packet.random_tuple (Sb_util.Rng.create 77)) with
  | Ok trace ->
    Alcotest.(check (list int)) "recovered chain serves traffic" [ 7 ]
      (Fabric.vnfs_in_trace (S.fabric standby) trace)
  | Error e -> Alcotest.failf "probe on standby failed: %a" Fabric.pp_error e

let test_gsb_dies_between_prepare_and_commit () =
  (* The coordinator crashes after sending Prepares but before deciding:
     participants hold votes/reservations for a transaction that will
     never conclude. The standby recovers the persisted (pre-update)
     chain state from MUSIC and re-drives it; the system must converge
     back to a consistent installed-route state — no half-installed
     update, no leaked admission, and a working data plane. *)
  (* vnf 7 deployed at site 1 FIRST so its controller is homed there:
     coordinator <-> participant crosses the 30 ms wide area. *)
  let sys = S.create ~num_sites:2 ~delay:delay30 ~gsb_site:0 () in
  S.deploy_vnf sys ~vnf:7 ~site:1 ~capacity:10. ~instances:2;
  S.deploy_vnf sys ~vnf:7 ~site:0 ~capacity:10. ~instances:2;
  S.register_edge sys ~site:0 ~attachment:"office-A";
  S.register_edge sys ~site:1 ~attachment:"office-B";
  S.set_route_policy sys (fun _spec ~exclude:_ ->
      Some [ { T.element_sites = [| 0; 0; 1 |]; weight = 1.0 } ]);
  let store =
    Sb_music.Store.create (S.engine sys) ~replica_sites:[ 0; 1; 1 ] ~delay:delay30
  in
  S.attach_store sys store;
  let chain = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  let routes_before = S.chain_routes sys ~chain in
  let load_before = S.vnf_committed_load sys ~vnf:7 ~site:0 in
  (* Start a route update (2PC round 2) and stop the world mid-flight:
     Prepares are delivered at +30 ms, votes reach the coordinator at
     +60 ms — kill at +45 ms, squarely between prepare and commit. *)
  let t0 = E.now (S.engine sys) in
  S.update_routes sys ~chain [ { T.element_sites = [| 0; 1; 1 |]; weight = 1.0 } ];
  E.run_until (S.engine sys) (t0 +. 0.045);
  Alcotest.(check bool) "a transaction is in flight" true (S.txns_in_flight sys > 0);
  S.set_gsb_down sys true;
  E.run (S.engine sys);
  Alcotest.(check int) "in-flight state died with the coordinator" 0
    (S.txns_in_flight sys);
  (* Standby takes over and re-drives from the store. *)
  S.set_gsb_down sys false;
  let recovered = ref [] in
  S.recover_from_store sys store ~on_done:(fun ids -> recovered := ids);
  E.run (S.engine sys);
  Alcotest.(check (list int)) "chain recovered" [ chain ] !recovered;
  Alcotest.(check bool) "committed routes are the pre-update ones" true
    (S.chain_routes sys ~chain = routes_before);
  Alcotest.(check (float 1e-9)) "no admission leaked from the dead transaction"
    load_before
    (S.vnf_committed_load sys ~vnf:7 ~site:0);
  Alcotest.(check (float 1e-9)) "the uncommitted update never became load" 0.
    (S.vnf_committed_load sys ~vnf:7 ~site:1);
  match S.probe_chain sys ~chain (Packet.random_tuple (Sb_util.Rng.create 9)) with
  | Ok trace ->
    Alcotest.(check (list int)) "data plane consistent after takeover" [ 7 ]
      (Fabric.vnfs_in_trace (S.fabric sys) trace)
  | Error e -> Alcotest.failf "probe after takeover failed: %a" Fabric.pp_error e

(* ----------------------- edge-site addition ------------------------ *)

let build_three_sites () =
  let sys = S.create ~num_sites:3 ~delay:delay30 ~gsb_site:0 () in
  S.deploy_vnf sys ~vnf:7 ~site:0 ~capacity:10. ~instances:2;
  S.deploy_vnf sys ~vnf:7 ~site:1 ~capacity:10. ~instances:2;
  S.register_edge sys ~site:0 ~attachment:"office-A";
  S.register_edge sys ~site:1 ~attachment:"office-B";
  S.register_edge sys ~site:2 ~attachment:"mobile";
  S.set_route_policy sys (fun _spec ~exclude:_ ->
      Some [ { T.element_sites = [| 0; 0; 1 |]; weight = 1.0 } ]);
  sys

let test_edge_site_addition_steps () =
  let sys = build_three_sites () in
  let chain = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  let t0 = E.now (S.engine sys) in
  S.add_edge_site sys ~chain ~site:2;
  E.run (S.engine sys);
  let steps = S.log_between sys t0 (E.now (S.engine sys)) in
  let has sub = List.exists (fun (_, m) -> contains m sub) steps in
  Alcotest.(check bool) "step 1: choose 1st VNF site" true (has "chose 1st VNF's site");
  Alcotest.(check bool) "step 2: edge fwrdr receives info" true (has "received 1st VNF's info");
  Alcotest.(check bool) "step 3: edge dataplane configured" true (has "dataplane configured");
  Alcotest.(check bool) "step 4: VNF fwrdr receives edge info" true
    (has "receives edge's fwrdr info");
  Alcotest.(check bool) "step 6: VNF fwrdr finishes" true (has "finishes configuration");
  (* Total well under a second (paper Table 2: < 600 ms). *)
  let total = E.now (S.engine sys) -. t0 in
  Alcotest.(check bool) "total < 1 s" true (total < 1.0)

let test_edge_site_traffic_flows () =
  let sys = build_three_sites () in
  let chain = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  S.add_edge_site sys ~chain ~site:2;
  E.run (S.engine sys);
  let tuple = Packet.random_tuple (Sb_util.Rng.create 4) in
  match S.probe_chain sys ~chain ~ingress_site:2 tuple with
  | Ok trace ->
    Alcotest.(check (list int)) "traffic from new edge traverses the chain" [ 7 ]
      (Fabric.vnfs_in_trace (S.fabric sys) trace)
  | Error e -> Alcotest.failf "probe from new edge failed: %a" Fabric.pp_error e

let test_log_is_ordered () =
  let sys = build_two_sites () in
  let _ = S.request_chain sys (nat_spec "c") in
  E.run (S.engine sys);
  let times = List.map fst (S.log sys) in
  Alcotest.(check bool) "timestamps non-decreasing" true
    (List.sort compare times = times)

(* -------------- elastic placement: scale-out round trip -------------- *)

module Shard = Sb_dataplane.Shard

(* Scale-out then drain-and-remove must be an identity on every
   observable: committed routes, installed rule keys, admission ledger,
   instance census and balancer behaviour. We run the full lifecycle on
   one system — open a deployment, route through it, carry connections,
   route back off, drain, retract — while a twin system only carries the
   same connections, and compare the two afterwards. The twins stay
   comparable because both see the same packets in the same order, so
   their (seeded) balancer draw streams stay aligned. *)

let build_scale_twin ~lanes ~flow_store () =
  let delay i j = if i = j then 0. else 0.02 in
  let sys =
    S.create ~seed:11 ~flow_store ~lanes ~num_sites:6 ~delay ~gsb_site:0 ()
  in
  List.iter
    (fun (vnf, site) -> S.deploy_vnf sys ~vnf ~site ~capacity:100. ~instances:2)
    [ (0, 1); (0, 2) ];
  S.register_edge sys ~site:0 ~attachment:"in";
  S.register_edge sys ~site:3 ~attachment:"out";
  S.set_route_policy sys (fun _ ~exclude:_ ->
      Some
        [
          { T.element_sites = [| 0; 1; 3 |]; weight = 0.5 };
          { T.element_sites = [| 0; 2; 3 |]; weight = 0.5 };
        ]);
  let chain =
    S.request_chain sys
      {
        T.spec_name = "round-trip";
        ingress_attachment = "in";
        egress_attachment = "out";
        vnfs = [ 0 ];
        traffic = 4.;
      }
  in
  E.run (S.engine sys);
  (sys, chain)

let scale_round_trip ~lanes ~flow_store ~seed ~scale_site =
  let fail fmt = QCheck.Test.fail_reportf fmt in
  let a, ca = build_scale_twin ~lanes ~flow_store () in
  let b, cb = build_scale_twin ~lanes ~flow_store () in
  Fun.protect ~finally:(fun () ->
      Shard.shutdown (S.shard a);
      Shard.shutdown (S.shard b))
  @@ fun () ->
  S.scale_out a ~vnf:0 ~site:scale_site ~capacity:100. ~instances:2;
  S.update_routes a ~chain:ca
    [
      { T.element_sites = [| 0; 1; 3 |]; weight = 0.4 };
      { T.element_sites = [| 0; 2; 3 |]; weight = 0.3 };
      { T.element_sites = [| 0; scale_site; 3 |]; weight = 0.3 };
    ];
  E.run (S.engine a);
  (* The same connections arrive at both twins; on [a] some pin on the
     scaled-out site. *)
  let rng = Sb_util.Rng.create seed in
  for _ = 1 to 10 do
    let tu = Packet.random_tuple rng in
    (match S.probe_chain a ~chain:ca tu with
    | Ok _ -> ()
    | Error e -> fail "mid-lifecycle probe failed on a: %a" Fabric.pp_error e);
    match S.probe_chain b ~chain:cb tu with
    | Ok _ -> ()
    | Error e -> fail "mid-lifecycle probe failed on twin: %a" Fabric.pp_error e
  done;
  S.update_routes a ~chain:ca
    [
      { T.element_sites = [| 0; 1; 3 |]; weight = 0.5 };
      { T.element_sites = [| 0; 2; 3 |]; weight = 0.5 };
    ];
  E.run (S.engine a);
  let done_ = ref [] in
  S.drain_and_remove a ~vnf:0 ~site:scale_site ~timeout:30.
    ~on_done:(fun ok -> done_ := ok :: !done_) ();
  (* The connections end their lifetime — on both twins alike. *)
  List.iter
    (fun sys ->
      let f = S.shard sys in
      Shard.set_clock f 5;
      ignore (Shard.expire_flows f ~idle_before:5))
    [ a; b ];
  E.run (S.engine a);
  if !done_ <> [ true ] then fail "drain did not complete";
  let ch = S.deployment_churn a in
  if
    ch.S.ch_scale_outs <> 1 || ch.S.ch_removed <> 1
    || ch.S.ch_drains_completed <> 1
    || ch.S.ch_drains_aborted <> 0
    || ch.S.ch_draining <> 0
  then fail "churn ledger off: %d/%d/%d/%d/%d" ch.S.ch_scale_outs ch.S.ch_removed
      ch.S.ch_drains_completed ch.S.ch_drains_aborted ch.S.ch_draining;
  (* State equality with the never-scaled twin. *)
  if S.chain_routes a ~chain:ca <> S.chain_routes b ~chain:cb then
    fail "routes differ after round trip";
  for site = 0 to 5 do
    for vnf = 0 to 0 do
      if
        S.site_vnf_instance_ids a ~site ~vnf
        <> S.site_vnf_instance_ids b ~site ~vnf
      then fail "instance census differs at site %d" site;
      if S.site_vnf_instances a ~site ~vnf <> S.site_vnf_instances b ~site ~vnf
      then fail "live instances/weights differ at site %d" site;
      let la = S.vnf_committed_load a ~vnf ~site
      and lb = S.vnf_committed_load b ~vnf ~site in
      if Float.abs (la -. lb) > 1e-9 then
        fail "committed load differs at site %d: %f vs %f" site la lb
    done;
    (* The scaled site may keep superseded rule versions; everywhere else
       the installed keys must match exactly. *)
    if
      site <> scale_site
      && List.map fst (S.site_installed_rules a ~site)
         <> List.map fst (S.site_installed_rules b ~site)
    then fail "installed rule keys differ at site %d" site
  done;
  (* Behavioural equality: fresh connections balance identically. *)
  let rng = Sb_util.Rng.create (seed + 1) in
  for _ = 1 to 10 do
    let tu = Packet.random_tuple rng in
    match (S.probe_chain a ~chain:ca tu, S.probe_chain b ~chain:cb tu) with
    | Ok ta, Ok tb ->
      if Shard.instances_in_trace ta <> Shard.instances_in_trace tb then
        fail "fresh connection pinned differently after round trip";
      if
        Shard.vnfs_in_trace (S.shard a) ta <> Shard.vnfs_in_trace (S.shard b) tb
      then fail "fresh connection traversed different VNFs"
    | Error e, _ -> fail "post-round-trip probe failed on a: %a" Fabric.pp_error e
    | _, Error e ->
      fail "post-round-trip probe failed on twin: %a" Fabric.pp_error e
  done;
  true

let prop_scale_round_trip =
  QCheck.Test.make
    ~name:"scale-out then drain-and-remove is an identity (stores x lanes)"
    ~count:12
    QCheck.(pair (int_range 1 10_000) bool)
    (fun (seed, high_site) ->
      let scale_site = if high_site then 5 else 4 in
      List.for_all
        (fun (lanes, flow_store) ->
          scale_round_trip ~lanes ~flow_store ~seed ~scale_site)
        [
          (1, Fabric.Local);
          (1, Fabric.Replicated 2);
          (4, Fabric.Local);
          (4, Fabric.Replicated 2);
        ])

let () =
  Alcotest.run "sb_ctrl"
    [
      ( "chain_creation",
        [
          Alcotest.test_case "end to end" `Quick test_chain_creation_end_to_end;
          Alcotest.test_case "dataplane works" `Quick test_chain_dataplane_works;
          Alcotest.test_case "sub-second latency" `Quick test_chain_creation_latency_sub_second;
          Alcotest.test_case "admission accounting" `Quick test_admission_accounting;
          Alcotest.test_case "log ordered" `Quick test_log_is_ordered;
        ] );
      ( "two_phase_commit",
        [
          Alcotest.test_case "reject triggers recompute" `Quick
            test_2pc_reject_triggers_recompute;
          Alcotest.test_case "atomicity" `Quick test_2pc_atomicity_no_partial_commit;
          Alcotest.test_case "chains share capacity" `Quick test_two_chains_share_capacity;
        ] );
      ( "dynamic_routes",
        [
          Alcotest.test_case "add route rebalances" `Quick test_add_route_doubles_capacity;
          Alcotest.test_case "update latency" `Quick test_add_route_update_latency;
          Alcotest.test_case "existing flows survive" `Quick
            test_existing_flows_survive_route_addition;
        ] );
      ( "elasticity",
        [
          Alcotest.test_case "forwarder join replays rules" `Quick
            test_add_forwarder_replays_rules;
          Alcotest.test_case "instance scaling rebalances new flows" `Quick
            test_scale_instances_rebalances_new_flows;
          Alcotest.test_case "scaling requires deployment" `Quick test_scale_requires_deployment;
          Alcotest.test_case "instances spread over forwarders" `Quick
            test_instances_spread_over_forwarders;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "chain measurements" `Quick test_chain_measurements;
          Alcotest.test_case "unknown chain" `Quick test_measurements_unknown_chain;
        ] );
      ( "fault_tolerance",
        [
          Alcotest.test_case "GSB failover via MUSIC" `Quick test_gsb_failover_recovers_chains;
          Alcotest.test_case "GSB dies between prepare and commit" `Quick
            test_gsb_dies_between_prepare_and_commit;
        ] );
      ( "edge_sites",
        [
          Alcotest.test_case "addition steps (Table 2)" `Quick test_edge_site_addition_steps;
          Alcotest.test_case "traffic flows from new edge" `Quick test_edge_site_traffic_flows;
        ] );
      ("placement_lifecycle", [ QCheck_alcotest.to_alcotest prop_scale_round_trip ]);
    ]
