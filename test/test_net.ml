module Topology = Sb_net.Topology
module Paths = Sb_net.Paths
module Traffic = Sb_net.Traffic
module Load = Sb_net.Load

let check_float = Alcotest.(check (float 1e-9))

let line3 () = Topology.line ~delays:[ 0.01; 0.02 ] ~bandwidth:10.

(* ---------------------------- topology ----------------------------- *)

let test_line_shape () =
  let t = line3 () in
  Alcotest.(check int) "nodes" 3 (Topology.num_nodes t);
  Alcotest.(check int) "duplex links" 4 (Topology.num_links t)

let test_out_links () =
  let t = line3 () in
  Alcotest.(check int) "middle node degree 2" 2 (List.length (Topology.out_links t 1));
  Alcotest.(check int) "end node degree 1" 1 (List.length (Topology.out_links t 0))

let test_link_lookup () =
  let t = line3 () in
  let l = Topology.link t 0 in
  Alcotest.(check bool) "link endpoints valid" true (l.Topology.src >= 0 && l.Topology.dst >= 0);
  Alcotest.check_raises "bad id" (Invalid_argument "Topology.link") (fun () ->
      ignore (Topology.link t 999))

let test_add_link_validation () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  Alcotest.check_raises "unknown endpoint"
    (Invalid_argument "Topology.add_link: unknown endpoint") (fun () ->
      ignore (Topology.add_link t ~src:a ~dst:42 ~bandwidth:1. ~delay:0.));
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Topology.add_link: non-positive bandwidth") (fun () ->
      ignore (Topology.add_link t ~src:a ~dst:a ~bandwidth:0. ~delay:0.))

let test_full_mesh () =
  let t = Topology.full_mesh ~n:4 ~bandwidth:1. ~delay:0.005 in
  Alcotest.(check int) "nodes" 4 (Topology.num_nodes t);
  Alcotest.(check int) "links" 12 (Topology.num_links t)

let test_backbone_connected () =
  let rng = Sb_util.Rng.create 1 in
  let t = Topology.backbone ~rng ~num_core:6 ~pops_per_core:2 () in
  Alcotest.(check int) "node count" 18 (Topology.num_nodes t);
  let p = Paths.compute t in
  for i = 0 to Topology.num_nodes t - 1 do
    for j = 0 to Topology.num_nodes t - 1 do
      Alcotest.(check bool) "all pairs reachable" true (Paths.reachable p i j)
    done
  done

let test_backbone_deterministic () =
  let t1 = Topology.backbone ~rng:(Sb_util.Rng.create 5) ~num_core:5 ~pops_per_core:1 () in
  let t2 = Topology.backbone ~rng:(Sb_util.Rng.create 5) ~num_core:5 ~pops_per_core:1 () in
  Alcotest.(check int) "same link count" (Topology.num_links t1) (Topology.num_links t2);
  let l1 = Topology.link t1 0 and l2 = Topology.link t2 0 in
  check_float "same first-link delay" l1.Topology.delay l2.Topology.delay

let test_backbone_rejects_small () =
  let rng = Sb_util.Rng.create 1 in
  Alcotest.check_raises "too few cores"
    (Invalid_argument "Topology.backbone: need at least 3 core nodes") (fun () ->
      ignore (Topology.backbone ~rng ~num_core:2 ~pops_per_core:1 ()))

(* ------------------------------ paths ------------------------------ *)

let test_dijkstra_line () =
  let t = line3 () in
  let p = Paths.compute t in
  check_float "0 to 2" 0.03 (Paths.delay p 0 2);
  check_float "2 to 0" 0.03 (Paths.delay p 2 0);
  check_float "self" 0. (Paths.delay p 1 1)

let test_dijkstra_vs_floyd_warshall () =
  (* Cross-check Dijkstra all-pairs against an independent Floyd-Warshall. *)
  let rng = Sb_util.Rng.create 2 in
  let t = Topology.backbone ~rng ~num_core:5 ~pops_per_core:2 () in
  let n = Topology.num_nodes t in
  let dist = Array.make_matrix n n infinity in
  for i = 0 to n - 1 do
    dist.(i).(i) <- 0.
  done;
  Array.iter
    (fun (l : Topology.link) ->
      if l.Topology.delay < dist.(l.Topology.src).(l.Topology.dst) then
        dist.(l.Topology.src).(l.Topology.dst) <- l.Topology.delay)
    (Topology.links t);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if dist.(i).(k) +. dist.(k).(j) < dist.(i).(j) then
          dist.(i).(j) <- dist.(i).(k) +. dist.(k).(j)
      done
    done
  done;
  let p = Paths.compute t in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "pair (%d,%d)" i j)
        dist.(i).(j) (Paths.delay p i j)
    done
  done

let test_fractions_conservation () =
  let rng = Sb_util.Rng.create 3 in
  let t = Topology.backbone ~rng ~num_core:5 ~pops_per_core:2 () in
  let p = Paths.compute t in
  let n = Topology.num_nodes t in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let fracs = Paths.fractions p ~src ~dst in
        (* Outflow from src is 1, inflow to dst is 1. *)
        let out_src =
          List.fold_left
            (fun acc (e, f) ->
              let l = Topology.link t e in
              if l.Topology.src = src then acc +. f else acc)
            0. fracs
        in
        let in_dst =
          List.fold_left
            (fun acc (e, f) ->
              let l = Topology.link t e in
              if l.Topology.dst = dst then acc +. f else acc)
            0. fracs
        in
        Alcotest.(check (float 1e-6)) "unit outflow at src" 1. out_src;
        Alcotest.(check (float 1e-6)) "unit inflow at dst" 1. in_dst
      end
    done
  done

let test_fractions_on_shortest_paths_only () =
  let rng = Sb_util.Rng.create 4 in
  let t = Topology.backbone ~rng ~num_core:4 ~pops_per_core:1 () in
  let p = Paths.compute t in
  let n = Topology.num_nodes t in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        List.iter
          (fun (e, f) ->
            let l = Topology.link t e in
            let on_sp =
              Float.abs
                (Paths.delay p src l.Topology.src +. l.Topology.delay
                +. Paths.delay p l.Topology.dst dst -. Paths.delay p src dst)
              < 1e-9
            in
            Alcotest.(check bool) "positive fraction only on shortest paths" true
              ((f > 0. && on_sp) || f = 0.))
          (Paths.fractions p ~src ~dst)
    done
  done

let test_ecmp_even_split () =
  (* Diamond: a-b and a-c equal delay, b-d and c-d equal delay: two equal
     paths, each link carries 0.5. *)
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let c = Topology.add_node t "c" in
  let d = Topology.add_node t "d" in
  Topology.add_duplex t a b ~bandwidth:1. ~delay:0.01;
  Topology.add_duplex t a c ~bandwidth:1. ~delay:0.01;
  Topology.add_duplex t b d ~bandwidth:1. ~delay:0.01;
  Topology.add_duplex t c d ~bandwidth:1. ~delay:0.01;
  let p = Paths.compute t in
  let fracs = Paths.fractions p ~src:a ~dst:d in
  Alcotest.(check int) "four links carry traffic" 4 (List.length fracs);
  List.iter (fun (_, f) -> check_float "even split" 0.5 f) fracs

let test_link_fraction_lookup () =
  let t = line3 () in
  let p = Paths.compute t in
  (* The link 0->1 carries all of 0->2 traffic. *)
  let links01 =
    Array.to_list (Topology.links t)
    |> List.filter (fun (l : Topology.link) -> l.Topology.src = 0 && l.Topology.dst = 1)
  in
  match links01 with
  | [ l ] ->
    check_float "full fraction" 1. (Paths.link_fraction p ~src:0 ~dst:2 ~link:l.Topology.id);
    check_float "nothing in reverse" 0. (Paths.link_fraction p ~src:2 ~dst:0 ~link:l.Topology.id)
  | _ -> Alcotest.fail "expected unique 0->1 link"

let test_hop_count () =
  let t = line3 () in
  let p = Paths.compute t in
  Alcotest.(check int) "two hops" 2 (Paths.hop_count p 0 2);
  Alcotest.(check int) "zero hops" 0 (Paths.hop_count p 1 1)

let test_unreachable () =
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let p = Paths.compute t in
  Alcotest.(check bool) "not reachable" false (Paths.reachable p a b);
  Alcotest.(check bool) "delay infinite" true (Paths.delay p a b = infinity);
  Alcotest.(check (list (pair int (float 0.)))) "no fractions" []
    (Paths.fractions p ~src:a ~dst:b)

let test_hop_count_equal_cost_paths () =
  (* Diamond with a direct equal-cost shortcut: a->d directly (one hop,
     delay 0.02) and a->b->d (two hops, 0.01 + 0.01). Both are shortest;
     hop_count must report the minimum over all shortest paths (1), not
     whichever path Dijkstra relaxed last. *)
  let t = Topology.create () in
  let a = Topology.add_node t "a" in
  let b = Topology.add_node t "b" in
  let d = Topology.add_node t "d" in
  Topology.add_duplex t a b ~bandwidth:1. ~delay:0.01;
  Topology.add_duplex t b d ~bandwidth:1. ~delay:0.01;
  Topology.add_duplex t a d ~bandwidth:1. ~delay:0.02;
  let p = Paths.compute t in
  check_float "both routes shortest" 0.02 (Paths.delay p a d);
  Alcotest.(check int) "min hops over shortest paths" 1 (Paths.hop_count p a d);
  Alcotest.(check int) "reverse too" 1 (Paths.hop_count p d a);
  Alcotest.(check int) "via-node unaffected" 1 (Paths.hop_count p a b)

let test_fractions_dag_cut () =
  (* Every distance cut of the shortest-path DAG must carry the full unit
     of flow: ECMP links only go strictly forward in distance from [src],
     so the fractions crossing any threshold between 0 and dist(src,dst)
     sum to exactly 1. *)
  let rng = Sb_util.Rng.create 12 in
  let t = Topology.backbone ~rng ~num_core:5 ~pops_per_core:2 () in
  let p = Paths.compute t in
  let n = Topology.num_nodes t in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let total = Paths.delay p src dst in
        let fracs = Paths.fractions p ~src ~dst in
        List.iter
          (fun frac_of_total ->
            let theta = frac_of_total *. total in
            (* Skip degenerate cuts through a node (a link endpoint sitting
               exactly on the threshold would be counted ambiguously). *)
            let on_node =
              List.exists
                (fun (e, _) ->
                  let l = Topology.link t e in
                  Float.abs (Paths.delay p src l.Topology.src -. theta) < 1e-9
                  || Float.abs (Paths.delay p src l.Topology.dst -. theta) < 1e-9)
                fracs
            in
            if not on_node then begin
              let crossing =
                List.fold_left
                  (fun acc (e, f) ->
                    let l = Topology.link t e in
                    if
                      Paths.delay p src l.Topology.src < theta
                      && Paths.delay p src l.Topology.dst > theta
                    then acc +. f
                    else acc)
                  0. fracs
              in
              Alcotest.(check (float 1e-6))
                (Printf.sprintf "unit flow across cut %.2f of (%d,%d)" frac_of_total src dst)
                1. crossing
            end)
          [ 0.25; 0.5; 0.75 ]
      end
    done
  done

(* Naive reference ECMP splitter, written against the spec rather than the
   packed implementation: distances from an independent Floyd–Warshall,
   link flows accumulated into plain association lists. *)
let reference_fractions t ~src ~dst =
  let n = Topology.num_nodes t in
  let dist = Array.make_matrix n n infinity in
  for i = 0 to n - 1 do
    dist.(i).(i) <- 0.
  done;
  Array.iter
    (fun (l : Topology.link) ->
      if l.Topology.delay < dist.(l.Topology.src).(l.Topology.dst) then
        dist.(l.Topology.src).(l.Topology.dst) <- l.Topology.delay)
    (Topology.links t);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if dist.(i).(k) +. dist.(k).(j) < dist.(i).(j) then
          dist.(i).(j) <- dist.(i).(k) +. dist.(k).(j)
      done
    done
  done;
  if src = dst || dist.(src).(dst) = infinity then []
  else begin
    let total = dist.(src).(dst) in
    let on_path u (l : Topology.link) =
      Float.abs (dist.(src).(u) +. l.Topology.delay +. dist.(l.Topology.dst).(dst) -. total)
      < 1e-9
    in
    let order =
      List.init n (fun v -> v)
      |> List.filter (fun v ->
             dist.(src).(v) < infinity
             && dist.(v).(dst) < infinity
             && dist.(src).(v) +. dist.(v).(dst) -. total < 1e-9)
      |> List.sort (fun a b -> compare dist.(src).(a) dist.(src).(b))
    in
    let inflow = Array.make n 0. in
    inflow.(src) <- 1.;
    let link_flow = ref [] in
    List.iter
      (fun u ->
        if inflow.(u) > 0. && u <> dst then begin
          let next = List.filter (on_path u) (Topology.out_links t u) in
          let share = inflow.(u) /. float_of_int (List.length next) in
          List.iter
            (fun (l : Topology.link) ->
              inflow.(l.Topology.dst) <- inflow.(l.Topology.dst) +. share;
              let cur = try List.assoc l.Topology.id !link_flow with Not_found -> 0. in
              link_flow := (l.Topology.id, cur +. share) :: List.remove_assoc l.Topology.id !link_flow)
            next
        end)
      order;
    List.sort (fun (a, _) (b, _) -> compare a b) !link_flow
  end

let test_packed_fractions_match_reference () =
  let rng = Sb_util.Rng.create 14 in
  let t = Topology.backbone ~rng ~num_core:4 ~pops_per_core:2 () in
  let p = Paths.compute t in
  let n = Topology.num_nodes t in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      let expect = reference_fractions t ~src ~dst in
      let got = Paths.fractions p ~src ~dst in
      Alcotest.(check int)
        (Printf.sprintf "same link set for (%d,%d)" src dst)
        (List.length expect) (List.length got);
      List.iter2
        (fun (ee, ef) (ge, gf) ->
          Alcotest.(check int) "same link id" ee ge;
          Alcotest.(check (float 1e-9)) "same fraction" ef gf)
        expect got
    done
  done

let test_iter_fractions_agrees_with_list () =
  let rng = Sb_util.Rng.create 15 in
  let t = Topology.backbone ~rng ~num_core:4 ~pops_per_core:1 () in
  let p = Paths.compute t in
  let n = Topology.num_nodes t in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      let via_iter = ref [] in
      Paths.iter_fractions p ~src ~dst (fun e f -> via_iter := (e, f) :: !via_iter);
      Alcotest.(check (list (pair int (float 0.))))
        (Printf.sprintf "iter = list for (%d,%d)" src dst)
        (Paths.fractions p ~src ~dst)
        (List.rev !via_iter)
    done
  done

(* ----------------------------- traffic ----------------------------- *)

let test_gravity_total () =
  let rng = Sb_util.Rng.create 5 in
  let tm = Traffic.gravity ~rng ~n:10 ~total:100. in
  Alcotest.(check (float 1e-6)) "total preserved" 100. (Traffic.total tm)

let test_gravity_no_self_traffic () =
  let rng = Sb_util.Rng.create 6 in
  let tm = Traffic.gravity ~rng ~n:8 ~total:50. in
  for i = 0 to 7 do
    check_float "zero diagonal" 0. tm.(i).(i)
  done

let test_gravity_nonnegative () =
  let rng = Sb_util.Rng.create 7 in
  let tm = Traffic.gravity ~rng ~n:12 ~total:10. in
  Array.iter (Array.iter (fun v -> Alcotest.(check bool) "non-negative" true (v >= 0.))) tm

let test_traffic_scale () =
  let rng = Sb_util.Rng.create 8 in
  let tm = Traffic.gravity ~rng ~n:5 ~total:10. in
  let tm2 = Traffic.scale tm 3. in
  Alcotest.(check (float 1e-6)) "scaled" 30. (Traffic.total tm2)

let test_node_mass () =
  let rng = Sb_util.Rng.create 9 in
  let tm = Traffic.gravity ~rng ~n:6 ~total:60. in
  let sum = ref 0. in
  for i = 0 to 5 do
    sum := !sum +. Traffic.node_mass tm i
  done;
  Alcotest.(check (float 1e-6)) "masses sum to total" 60. !sum

(* ------------------------------ load ------------------------------- *)

let test_load_add_flow () =
  let t = line3 () in
  let p = Paths.compute t in
  let load = Load.create t p in
  Load.add_flow load ~src:0 ~dst:2 ~volume:5.;
  (* Both hops on the path carry 5. *)
  let carried =
    Array.to_list (Topology.links t)
    |> List.filter (fun (l : Topology.link) -> Load.link_load load l.Topology.id > 0.)
  in
  Alcotest.(check int) "two loaded links" 2 (List.length carried);
  List.iter
    (fun (l : Topology.link) -> check_float "5 units" 5. (Load.link_load load l.Topology.id))
    carried

let test_load_remove_flow () =
  let t = line3 () in
  let p = Paths.compute t in
  let load = Load.create t p in
  Load.add_flow load ~src:0 ~dst:2 ~volume:5.;
  Load.remove_flow load ~src:0 ~dst:2 ~volume:5.;
  check_float "mlu zero after removal" 0. (Load.mlu load)

let test_load_mlu () =
  let t = line3 () in
  let p = Paths.compute t in
  let load = Load.create t p in
  Load.add_flow load ~src:0 ~dst:2 ~volume:5.;
  check_float "mlu = 5/10" 0.5 (Load.mlu load)

let test_load_background () =
  let t = line3 () in
  let p = Paths.compute t in
  let load = Load.create t p in
  Load.add_background load 0 2.;
  check_float "background counted" 0.2 (Load.mlu load)

let test_load_self_flow_noop () =
  let t = line3 () in
  let p = Paths.compute t in
  let load = Load.create t p in
  Load.add_flow load ~src:1 ~dst:1 ~volume:100.;
  check_float "self flow carries nothing" 0. (Load.mlu load)

let test_load_copy_independent () =
  let t = line3 () in
  let p = Paths.compute t in
  let load = Load.create t p in
  Load.add_flow load ~src:0 ~dst:1 ~volume:1.;
  let copy = Load.copy load in
  Load.add_flow copy ~src:0 ~dst:1 ~volume:1.;
  Alcotest.(check bool) "copy diverges" true (Load.mlu copy > Load.mlu load)

let test_path_network_cost_positive () =
  let t = line3 () in
  let p = Paths.compute t in
  let load = Load.create t p in
  let c1 = Load.path_network_cost load ~src:0 ~dst:2 ~extra:1. in
  Load.add_flow load ~src:0 ~dst:2 ~volume:8.;
  let c2 = Load.path_network_cost load ~src:0 ~dst:2 ~extra:1. in
  Alcotest.(check bool) "cost grows with load (convexity)" true (c2 > c1);
  Alcotest.(check bool) "cost positive" true (c1 > 0.)

let test_path_max_utilization () =
  let t = line3 () in
  let p = Paths.compute t in
  let load = Load.create t p in
  Load.add_flow load ~src:0 ~dst:1 ~volume:4.;
  Alcotest.(check (float 1e-9)) "max util on path" 0.4
    (Load.path_max_utilization load ~src:0 ~dst:2)

(* gravity masses should be skewed: top node carries a disproportionate
   share (heavy-tailed), which the chain workload relies on. *)
let test_gravity_skew () =
  let rng = Sb_util.Rng.create 10 in
  let tm = Traffic.gravity ~rng ~n:40 ~total:100. in
  let masses = List.init 40 (fun i -> Traffic.node_mass tm i) in
  let sorted = List.sort (fun a b -> compare b a) masses in
  let top5 = List.fold_left ( +. ) 0. (List.filteri (fun i _ -> i < 5) sorted) in
  Alcotest.(check bool) "top 5 of 40 nodes exceed uniform share" true (top5 > 100. *. 5. /. 40.)

let prop_fractions_sum_per_node =
  QCheck.Test.make ~name:"ECMP flow conservation at transit nodes" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Sb_util.Rng.create seed in
      let t = Topology.backbone ~rng ~num_core:4 ~pops_per_core:1 () in
      let p = Paths.compute t in
      let n = Topology.num_nodes t in
      let src = Sb_util.Rng.int rng n in
      let dst = (src + 1 + Sb_util.Rng.int rng (n - 1)) mod n in
      if src = dst then true
      else begin
        let fracs = Paths.fractions p ~src ~dst in
        (* At every node except src/dst: inflow = outflow. *)
        let ok = ref true in
        for v = 0 to n - 1 do
          if v <> src && v <> dst then begin
            let inflow =
              List.fold_left
                (fun acc (e, f) ->
                  if (Topology.link t e).Topology.dst = v then acc +. f else acc)
                0. fracs
            in
            let outflow =
              List.fold_left
                (fun acc (e, f) ->
                  if (Topology.link t e).Topology.src = v then acc +. f else acc)
                0. fracs
            in
            if Float.abs (inflow -. outflow) > 1e-6 then ok := false
          end
        done;
        !ok
      end)

let () =
  Alcotest.run "sb_net"
    [
      ( "topology",
        [
          Alcotest.test_case "line shape" `Quick test_line_shape;
          Alcotest.test_case "out links" `Quick test_out_links;
          Alcotest.test_case "link lookup" `Quick test_link_lookup;
          Alcotest.test_case "add_link validation" `Quick test_add_link_validation;
          Alcotest.test_case "full mesh" `Quick test_full_mesh;
          Alcotest.test_case "backbone connected" `Quick test_backbone_connected;
          Alcotest.test_case "backbone deterministic" `Quick test_backbone_deterministic;
          Alcotest.test_case "backbone rejects small" `Quick test_backbone_rejects_small;
        ] );
      ( "paths",
        [
          Alcotest.test_case "dijkstra line" `Quick test_dijkstra_line;
          Alcotest.test_case "dijkstra vs floyd-warshall" `Quick test_dijkstra_vs_floyd_warshall;
          Alcotest.test_case "fractions conservation" `Quick test_fractions_conservation;
          Alcotest.test_case "fractions on shortest paths" `Quick
            test_fractions_on_shortest_paths_only;
          Alcotest.test_case "ECMP even split" `Quick test_ecmp_even_split;
          Alcotest.test_case "link fraction lookup" `Quick test_link_fraction_lookup;
          Alcotest.test_case "hop count" `Quick test_hop_count;
          Alcotest.test_case "hop count over equal-cost paths" `Quick
            test_hop_count_equal_cost_paths;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
          Alcotest.test_case "DAG-cut flow conservation" `Quick test_fractions_dag_cut;
          Alcotest.test_case "packed fractions match naive reference" `Quick
            test_packed_fractions_match_reference;
          Alcotest.test_case "iter_fractions agrees with list" `Quick
            test_iter_fractions_agrees_with_list;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "gravity total" `Quick test_gravity_total;
          Alcotest.test_case "no self traffic" `Quick test_gravity_no_self_traffic;
          Alcotest.test_case "non-negative" `Quick test_gravity_nonnegative;
          Alcotest.test_case "scale" `Quick test_traffic_scale;
          Alcotest.test_case "node mass" `Quick test_node_mass;
          Alcotest.test_case "skew" `Quick test_gravity_skew;
        ] );
      ( "load",
        [
          Alcotest.test_case "add flow" `Quick test_load_add_flow;
          Alcotest.test_case "remove flow" `Quick test_load_remove_flow;
          Alcotest.test_case "mlu" `Quick test_load_mlu;
          Alcotest.test_case "background" `Quick test_load_background;
          Alcotest.test_case "self flow noop" `Quick test_load_self_flow_noop;
          Alcotest.test_case "copy independent" `Quick test_load_copy_independent;
          Alcotest.test_case "network cost convex" `Quick test_path_network_cost_positive;
          Alcotest.test_case "path max utilization" `Quick test_path_max_utilization;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_fractions_sum_per_node ]);
    ]
