module W = Sb_net.Workload
module Tg = Sb_dataplane.Traffic_gen
module Fabric = Sb_dataplane.Fabric
module Schedule = Sb_chaos.Schedule
module Rng = Sb_util.Rng

let ticks = 12
let keys = 18

(* Every generator family at one seed — the catalog the properties sweep. *)
let gens seed =
  [
    W.flash_crowd ~seed ~ticks ~keys ();
    W.ddos ~seed ~ticks ~keys ();
    W.elephant_mice ~seed ~ticks ~keys ();
    W.regional_failover ~seed ~ticks ~keys ();
    W.diurnal ~seed ~ticks ~keys ();
    W.overlay
      (W.diurnal ~seed ~ticks ~keys ())
      (W.shift (ticks / 2)
         (W.scale 0.5 (W.flash_crowd ~seed:(seed + 1) ~ticks:(ticks - (ticks / 2)) ~keys ())));
  ]

let grid w =
  Array.init (W.ticks w) (fun t ->
      Array.init (W.keys w) (fun k -> W.demand w ~tick:t ~key:k))

let churn_curve w = Array.init (W.ticks w) (fun t -> W.churn w ~tick:t)

(* -------------------------- qcheck properties ----------------------- *)

(* Same seed, bit-identical replay: the full demand grid and churn curve
   of two independently constructed generators are float-equal. *)
let prop_seed_determinism =
  QCheck.Test.make ~name:"same seed replays bit-identically" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      List.for_all2
        (fun a b -> grid a = grid b && churn_curve a = churn_curve b)
        (gens seed) (gens seed))

(* [demand] is pure: evaluating cells in a random order, with repeats,
   gives exactly the sequential grid — the generator accumulates no
   per-flow or per-tick state, which is what makes it constant-memory
   at a million keys. *)
let prop_constant_memory =
  QCheck.Test.make ~name:"demand is pure (order/repeat independent)" ~count:40
    QCheck.(pair (int_range 0 100_000) (int_range 0 1_000_000))
    (fun (seed, order_seed) ->
      let rng = Rng.create order_seed in
      List.for_all
        (fun w ->
          let g = grid w in
          let ok = ref true in
          for _ = 1 to 300 do
            let t = Rng.int rng (W.ticks w) and k = Rng.int rng (W.keys w) in
            if W.demand w ~tick:t ~key:k <> g.(t).(k) then ok := false
          done;
          !ok)
        (gens seed))

let total w t = W.total_demand w ~tick:t

let close_to a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= 1e-9 *. scale

(* The conservation claims the combinator docs make. *)
let prop_combinators_conserve =
  QCheck.Test.make ~name:"overlay/scale/shift conserve total demand" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let a = W.flash_crowd ~seed ~ticks ~keys () in
      let b = W.diurnal ~seed:(seed + 1) ~ticks ~keys () in
      let ov = W.overlay a b in
      let sc = W.scale 0.25 a in
      let sh = W.shift 3 a in
      let ok = ref true in
      for t = 0 to ticks - 1 do
        if not (close_to (total ov t) (total a t +. total b t)) then ok := false;
        if not (close_to (total sc t) (0.25 *. total a t)) then ok := false;
        (* shift is exact, not approximate: the same floats, displaced. *)
        for k = 0 to keys - 1 do
          if W.demand sh ~tick:(t + 3) ~key:k <> W.demand a ~tick:t ~key:k then
            ok := false
        done
      done;
      for t = 0 to 2 do
        if total sh t <> 0. then ok := false
      done;
      !ok)

(* Regional failover redistributes, never destroys, demand: the total is
   flat across the failure boundary. *)
let prop_failover_conserves =
  QCheck.Test.make ~name:"regional failover conserves total demand" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let w = W.regional_failover ~seed ~ticks ~keys () in
      let t0 = total w 0 in
      let ok = ref true in
      for t = 1 to ticks - 1 do
        if not (close_to (total w t) t0) then ok := false
      done;
      !ok)

let prop_churn_bounded =
  QCheck.Test.make ~name:"churn stays in [0, 1]" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      List.for_all
        (fun w ->
          Array.for_all (fun c -> c >= 0. && c <= 1.) (churn_curve w))
        (gens seed))

(* Streaming generator: same seed gives the same packets and the same
   churned tuples; the live window is constant while distinct grows. *)
let prop_stream_determinism =
  QCheck.Test.make ~name:"streaming traffic_gen replays bit-identically" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let run () =
        let g = Tg.create_stream ~seed ~window:64 () in
        let acc = ref [] in
        for _ = 1 to 5 do
          for _ = 1 to 40 do
            acc := fst (Tg.next g) :: !acc
          done;
          Tg.churn g
            ~close:(fun tp -> acc := tp :: !acc)
            ~opened:(fun tp -> acc := tp :: !acc)
            17
        done;
        (!acc, Tg.live_flows g, Tg.distinct_flows g)
      in
      let a, la, da = run () in
      let b, lb, db = run () in
      a = b && la = lb && da = db && la = 64 && da = 64 + (5 * 17))

let qcheck_props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_seed_determinism;
      prop_constant_memory;
      prop_combinators_conserve;
      prop_failover_conserves;
      prop_churn_bounded;
      prop_stream_determinism;
    ]

(* ----------------------------- unit tests --------------------------- *)

let test_grid_bounds () =
  let w = W.flash_crowd ~seed:7 ~ticks ~keys () in
  Alcotest.(check int) "ticks" ticks (W.ticks w);
  Alcotest.(check int) "keys" keys (W.keys w);
  Alcotest.(check (float 0.)) "outside grid" 0. (W.demand w ~tick:ticks ~key:0);
  Alcotest.(check (float 0.)) "negative tick" 0. (W.demand w ~tick:(-1) ~key:0);
  Alcotest.check_raises "bad ticks"
    (Invalid_argument "Workload.flash_crowd: ticks must be positive") (fun () ->
      ignore (W.flash_crowd ~seed:7 ~ticks:0 ~keys ()))

let test_ramp_endpoints () =
  let w = W.constant ~ticks ~keys ~rate:2. in
  let r = W.ramp ~from_:1. ~to_:3. w in
  Alcotest.(check (float 1e-9)) "start factor" 2. (W.demand r ~tick:0 ~key:0);
  Alcotest.(check (float 1e-9)) "end factor" 6. (W.demand r ~tick:(ticks - 1) ~key:0)

let test_demand_into_matches () =
  let w = W.ddos ~seed:9 ~ticks ~keys () in
  let buf = Array.make keys 0. in
  W.demand_into w ~tick:3 buf;
  Array.iteri
    (fun k v -> Alcotest.(check (float 0.)) "demand_into cell" (W.demand w ~tick:3 ~key:k) v)
    buf

(* Schedule combinators mirror the workload vocabulary: window arithmetic
   on overlay/shift/stretch, and regional_outage builds one outage per
   site. *)
let test_schedule_combinators () =
  let s =
    Schedule.regional_outage ~seed:1 ~num_sites:6 ~horizon:10. ~sites:[ 1; 4 ]
      ~start:2. ~stop:8.
  in
  Alcotest.(check int) "outages" 2 (List.length s.Schedule.faults);
  let shifted = Schedule.shift 5. s in
  Alcotest.(check (float 1e-9)) "shift horizon" 15. shifted.Schedule.horizon;
  List.iter
    (fun f ->
      let start, stop = Schedule.window f in
      Alcotest.(check (float 1e-9)) "shift start" 7. start;
      Alcotest.(check (float 1e-9)) "shift stop" 13. stop)
    shifted.Schedule.faults;
  let stretched = Schedule.stretch 0.5 s in
  List.iter
    (fun f ->
      let start, stop = Schedule.window f in
      Alcotest.(check (float 1e-9)) "stretch start" 1. start;
      Alcotest.(check (float 1e-9)) "stretch stop" 4. stop)
    stretched.Schedule.faults;
  let both = Schedule.overlay s shifted in
  Alcotest.(check int) "overlay faults" 4 (List.length both.Schedule.faults);
  Alcotest.(check (float 1e-9)) "overlay horizon" 15. both.Schedule.horizon

(* Idle-flow expiry on the packed dataplane: flows driven at clock 0 are
   swept once the clock advances past the idle bound — except those a
   later packet refreshed — and the table count drops accordingly. *)
let test_plane_expiry () =
  let fab = Fabric.create ~seed:7 () in
  let sa = Fabric.add_site fab "A" in
  let fa = Fabric.add_forwarder fab ~site:sa in
  let ein = Fabric.add_edge fab ~site:sa ~forwarder:fa in
  let eout = Fabric.add_edge fab ~site:sa ~forwarder:fa in
  Fabric.install_rule fab ~forwarder:fa ~chain_label:1 ~egress_label:0 ~stage:0
    [ (Fabric.Edge eout, 1.0) ];
  let rng = Rng.create 3 in
  let tuples = Array.init 50 (fun _ -> Sb_dataplane.Packet.random_tuple rng) in
  Fabric.set_clock fab 0;
  Array.iter
    (fun tp ->
      Alcotest.(check bool) "delivered" true
        (Fabric.drive fab ~ingress:ein ~chain_label:1 ~egress_label:0 ~size:64 tp))
    tuples;
  let count0 = Fabric.flow_table_size fab ~forwarder:fa in
  Alcotest.(check int) "one entry per flow" 50 count0;
  (* Refresh 10 flows at clock 2, then sweep everything idle since 0. *)
  Fabric.set_clock fab 2;
  for i = 0 to 9 do
    ignore (Fabric.drive fab ~ingress:ein ~chain_label:1 ~egress_label:0 ~size:64 tuples.(i))
  done;
  let evicted = Fabric.expire_flows fab ~idle_before:2 in
  Alcotest.(check int) "evicted the 40 idle flows" 40 evicted;
  Alcotest.(check int) "survivors" 10 (Fabric.flow_table_size fab ~forwarder:fa);
  (* Survivors still forward without a rule lookup miss, and a second
     sweep at the same bound finds nothing. *)
  Alcotest.(check bool) "survivor still routed" true
    (Fabric.drive fab ~ingress:ein ~chain_label:1 ~egress_label:0 ~size:64 tuples.(0));
  Alcotest.(check int) "idempotent sweep" 0 (Fabric.expire_flows fab ~idle_before:2)

let () =
  Alcotest.run "sb_net.workload"
    [
      ( "unit",
        [
          Alcotest.test_case "grid bounds" `Quick test_grid_bounds;
          Alcotest.test_case "ramp endpoints" `Quick test_ramp_endpoints;
          Alcotest.test_case "demand_into" `Quick test_demand_into_matches;
          Alcotest.test_case "schedule combinators" `Quick test_schedule_combinators;
          Alcotest.test_case "plane idle-flow expiry" `Quick test_plane_expiry;
        ] );
      ("properties", qcheck_props);
    ]
