module Model = Sb_core.Model
module Routing = Sb_core.Routing
module Load_state = Sb_core.Load_state
module Greedy = Sb_core.Greedy
module Dp = Sb_core.Dp_routing
module Lpr = Sb_core.Lp_routing
module Eval = Sb_core.Eval
module Workload = Sb_core.Workload
module Capacity = Sb_core.Capacity
module Placement = Sb_core.Placement
module Topology = Sb_net.Topology

(* ---------------------------- fixtures ----------------------------- *)

(* Line topology 0 - 1 - 2 with sites everywhere, two VNFs. *)
let small_model ?(fwd = 2.) ?(rev = 1.) () =
  let topo = Topology.line ~delays:[ 0.01; 0.02 ] ~bandwidth:100. in
  let b = Model.builder topo in
  let s0 = Model.add_site b ~node:0 ~capacity:100. in
  let s1 = Model.add_site b ~node:1 ~capacity:100. in
  let s2 = Model.add_site b ~node:2 ~capacity:100. in
  let f0 = Model.add_vnf b ~name:"fw" ~cpu_per_unit:1. in
  let f1 = Model.add_vnf b ~name:"nat" ~cpu_per_unit:2. in
  Model.deploy b ~vnf:f0 ~site:s0 ~capacity:50.;
  Model.deploy b ~vnf:f0 ~site:s1 ~capacity:50.;
  Model.deploy b ~vnf:f1 ~site:s1 ~capacity:50.;
  Model.deploy b ~vnf:f1 ~site:s2 ~capacity:50.;
  let c = Model.add_chain b ~ingress:0 ~egress:2 ~vnfs:[ f0; f1 ] ~fwd ~rev () in
  (Model.finalize b (), c, f0, f1)

let synth_model ?(seed = 42) ?(params = Workload.default) () =
  let rng = Sb_util.Rng.create seed in
  let topo = Topology.backbone ~rng ~num_core:5 ~pops_per_core:2 () in
  Workload.synthesize ~rng topo params

let check_valid name r =
  match Routing.validate r with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Printf.sprintf "%s: invalid routing: %s" name e)

(* ------------------------------ model ------------------------------ *)

let test_model_accessors () =
  let m, c, f0, f1 = small_model () in
  Alcotest.(check int) "sites" 3 (Model.num_sites m);
  Alcotest.(check int) "vnfs" 2 (Model.num_vnfs m);
  Alcotest.(check int) "chains" 1 (Model.num_chains m);
  Alcotest.(check int) "chain length" 2 (Model.chain_length m c);
  Alcotest.(check int) "stages" 3 (Model.num_stages m c);
  Alcotest.(check (list int)) "stage 0 src = ingress" [ 0 ]
    (Model.stage_src_nodes m ~chain:c ~stage:0);
  Alcotest.(check (list int)) "stage 0 dst = f0 sites" [ 0; 1 ]
    (Model.stage_dst_nodes m ~chain:c ~stage:0);
  Alcotest.(check (list int)) "stage 2 dst = egress" [ 2 ]
    (Model.stage_dst_nodes m ~chain:c ~stage:2);
  Alcotest.(check (option int)) "stage 0 vnf" (Some f0) (Model.stage_dst_vnf m ~chain:c ~stage:0);
  Alcotest.(check (option int)) "stage 1 vnf" (Some f1) (Model.stage_dst_vnf m ~chain:c ~stage:1);
  Alcotest.(check (option int)) "stage 2 vnf" None (Model.stage_dst_vnf m ~chain:c ~stage:2)

let test_model_total_demand () =
  let m, _, _, _ = small_model ~fwd:2. ~rev:1. () in
  (* 3 stages x (2 + 1). *)
  Alcotest.(check (float 1e-9)) "demand" 9. (Model.total_demand m)

let test_model_scaling () =
  let m, c, _, _ = small_model () in
  let m2 = Model.with_scaled_traffic m 2.5 in
  Alcotest.(check (float 1e-9)) "scaled stage traffic" 5.
    (Model.fwd_traffic m2 ~chain:c ~stage:0);
  Alcotest.(check (float 1e-9)) "original untouched" 2.
    (Model.fwd_traffic m ~chain:c ~stage:0)

let test_model_capacity_delta () =
  let m, _, _, _ = small_model () in
  let m2 = Model.with_site_capacity_delta m [| 10.; 0.; 0. |] in
  Alcotest.(check (float 1e-9)) "site capacity grew" 110. (Model.site_capacity m2 0);
  (* VNF at site 0 scales proportionally: 50 * 1.1 = 55. *)
  Alcotest.(check (float 1e-9)) "m_sf scaled" 55. (Model.vnf_site_capacity m2 ~vnf:0 ~site:0)

let test_model_extra_deployments () =
  let m, _, f0, _ = small_model () in
  let m2 = Model.with_extra_deployments m [ (f0, 2, 25.) ] in
  Alcotest.(check (float 1e-9)) "new deployment" 25. (Model.vnf_site_capacity m2 ~vnf:f0 ~site:2);
  Alcotest.(check (float 0.)) "original unchanged" 0. (Model.vnf_site_capacity m ~vnf:f0 ~site:2);
  (* Existing deployments preserved. *)
  let m3 = Model.with_extra_deployments m [ (f0, 0, 999.) ] in
  Alcotest.(check (float 1e-9)) "existing kept" 50. (Model.vnf_site_capacity m3 ~vnf:f0 ~site:0)

let test_model_validation () =
  let topo = Topology.line ~delays:[ 0.01 ] ~bandwidth:10. in
  let b = Model.builder topo in
  let _s = Model.add_site b ~node:0 ~capacity:10. in
  Alcotest.check_raises "duplicate site"
    (Invalid_argument "Model.add_site: node already has a site") (fun () ->
      ignore (Model.add_site b ~node:0 ~capacity:5.));
  let v = Model.add_vnf b ~name:"x" ~cpu_per_unit:1. in
  Alcotest.check_raises "chain with undeployed vnf"
    (Invalid_argument "Model.add_chain: vnf has no deployment") (fun () ->
      ignore (Model.add_chain b ~ingress:0 ~egress:1 ~vnfs:[ v ] ~fwd:1. ()))

(* --------------------------- routing/eval -------------------------- *)

let test_routing_single_path_valid () =
  let m, c, _, _ = small_model () in
  let r = Routing.create m in
  Routing.add_path r ~chain:c ~nodes:[| 0; 0; 1; 2 |] ~frac:1.0;
  check_valid "single path" r

let test_routing_split_valid () =
  let m, c, _, _ = small_model () in
  let r = Routing.create m in
  Routing.add_path r ~chain:c ~nodes:[| 0; 0; 1; 2 |] ~frac:0.5;
  Routing.add_path r ~chain:c ~nodes:[| 0; 1; 2; 2 |] ~frac:0.5;
  check_valid "split path" r

let test_routing_detects_underflow () =
  let m, c, _, _ = small_model () in
  let r = Routing.create m in
  Routing.add_path r ~chain:c ~nodes:[| 0; 0; 1; 2 |] ~frac:0.7;
  match Routing.validate r with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected fractions-sum violation"

let test_routing_detects_bad_site () =
  let m, c, _, _ = small_model () in
  let r = Routing.create m in
  (* f0 is not deployed at node 2. *)
  Routing.add_path r ~chain:c ~nodes:[| 0; 2; 2; 2 |] ~frac:1.0;
  match Routing.validate r with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected invalid VNF site"

let test_routing_detects_conservation_violation () =
  let m, c, _, _ = small_model () in
  let r = Routing.create m in
  Routing.set_stage r ~chain:c ~stage:0 [ (0, 0, 1.0) ];
  Routing.set_stage r ~chain:c ~stage:1 [ (1, 1, 1.0) ]; (* flow teleports 0 -> 1 *)
  Routing.set_stage r ~chain:c ~stage:2 [ (1, 2, 1.0) ];
  match Routing.validate r with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected conservation violation"

let test_routing_alpha_bottleneck () =
  let m, c, _, _ = small_model ~fwd:2. ~rev:1. () in
  let r = Routing.create m in
  Routing.add_path r ~chain:c ~nodes:[| 0; 1; 1; 2 |] ~frac:1.0;
  (* f1 at site 1: load = l_f(2) * (w+v)(3) * (in + out = 2) = 12; cap 50 ->
     vnf alpha 50/12. Site 1 load: f0: 1*3*2=6 plus f1 12 = 18; site alpha
     100/18. Links fine. Overall alpha = min = 50/12. *)
  Alcotest.(check (float 1e-6)) "alpha" (50. /. 12.) (Routing.max_alpha r)

let test_routing_load_state_counts () =
  let m, c, _, _ = small_model ~fwd:2. ~rev:1. () in
  let r = Routing.create m in
  Routing.add_path r ~chain:c ~nodes:[| 0; 1; 1; 2 |] ~frac:1.0;
  let st = Routing.load_state r in
  Alcotest.(check (float 1e-9)) "f0@1 load" 6. (Load_state.vnf_load st ~vnf:0 ~site:1);
  Alcotest.(check (float 1e-9)) "f1@1 load" 12. (Load_state.vnf_load st ~vnf:1 ~site:1);
  Alcotest.(check (float 1e-9)) "site1 load" 18. (Load_state.site_load st 1)

let test_routing_latency_propagation () =
  let m, c, _, _ = small_model ~fwd:1. ~rev:0. () in
  let r = Routing.create m in
  Routing.add_path r ~chain:c ~nodes:[| 0; 0; 1; 2 |] ~frac:1.0;
  (* Stage delays: 0->0 = 0, 0->1 = 0.01, 1->2 = 0.02; weighted mean over 3
     stages each with traffic 1: (0 + 0.01 + 0.02)/3. *)
  Alcotest.(check (float 1e-9)) "propagation latency" 0.01 (Routing.propagation_latency r)

let test_routing_queueing_saturation () =
  let m, c, _, _ = small_model () in
  let r = Routing.create m in
  Routing.add_path r ~chain:c ~nodes:[| 0; 0; 1; 2 |] ~frac:1.0;
  let lat = Routing.mean_latency ~alpha:100. r in
  Alcotest.(check bool) "saturated latency infinite" true (lat = infinity)

let test_decompose_roundtrip () =
  let m, c, _, _ = small_model () in
  let r = Routing.create m in
  Routing.add_path r ~chain:c ~nodes:[| 0; 0; 1; 2 |] ~frac:0.3;
  Routing.add_path r ~chain:c ~nodes:[| 0; 1; 2; 2 |] ~frac:0.7;
  let paths = Routing.decompose_paths r ~chain:c in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. paths in
  Alcotest.(check (float 1e-6)) "fractions recovered" 1.0 total;
  List.iter
    (fun (nodes, _) -> Alcotest.(check int) "path length" 4 (Array.length nodes))
    paths

let test_decompose_lp_routing () =
  let m = synth_model () in
  match Lpr.solve m Lpr.Max_throughput with
  | Error e -> Alcotest.fail e
  | Ok { routing; _ } ->
    for c = 0 to Model.num_chains m - 1 do
      let paths = Routing.decompose_paths routing ~chain:c in
      let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. paths in
      Alcotest.(check (float 1e-4)) "decomposition preserves flow" 1.0 total
    done


let test_model_chain_traffic_factors () =
  let m = synth_model () in
  let n = Model.num_chains m in
  let factors = Array.init n (fun i -> if i = 0 then 2. else 1.) in
  let m2 = Model.with_chain_traffic_factors m factors in
  Alcotest.(check (float 1e-9)) "chain 0 doubled"
    (2. *. Model.fwd_traffic m ~chain:0 ~stage:0)
    (Model.fwd_traffic m2 ~chain:0 ~stage:0);
  Alcotest.(check (float 1e-9)) "chain 1 untouched"
    (Model.fwd_traffic m ~chain:1 ~stage:0)
    (Model.fwd_traffic m2 ~chain:1 ~stage:0);
  Alcotest.check_raises "arity"
    (Invalid_argument "Model.with_chain_traffic_factors: arity mismatch") (fun () ->
      ignore (Model.with_chain_traffic_factors m [| 1. |]))

let test_model_failed_links () =
  let m, c, _, _ = small_model () in
  (* Fail both directions of the 0-1 hop: nodes 0 and 1 disconnect. *)
  let topo = Model.topology m in
  let doomed =
    Array.to_list (Sb_net.Topology.links topo)
    |> List.filter (fun (l : Sb_net.Topology.link) ->
           (l.Sb_net.Topology.src = 0 && l.Sb_net.Topology.dst = 1)
           || (l.Sb_net.Topology.src = 1 && l.Sb_net.Topology.dst = 0))
    |> List.map (fun (l : Sb_net.Topology.link) -> l.Sb_net.Topology.id)
  in
  let m2 = Model.with_failed_links m doomed in
  let p = Model.paths m2 in
  Alcotest.(check bool) "0 and 1 disconnected" false (Sb_net.Paths.reachable p 0 1);
  Alcotest.(check bool) "1 and 2 still connected" true (Sb_net.Paths.reachable p 1 2);
  Alcotest.(check int) "two links removed"
    (Sb_net.Topology.num_links topo - 2)
    (Sb_net.Topology.num_links (Model.topology m2));
  (* The original model is untouched. *)
  Alcotest.(check bool) "original intact" true
    (Sb_net.Paths.reachable (Model.paths m) 0 1);
  ignore c

let test_model_failed_links_preserves_background () =
  let m = synth_model () in
  let total_bg m' =
    let topo = Model.topology m' in
    let acc = ref 0. in
    for e = 0 to Sb_net.Topology.num_links topo - 1 do
      acc := !acc +. Model.background m' e
    done;
    !acc
  in
  (* Find a link with background traffic and fail a different one. *)
  let m2 = Model.with_failed_links m [ 0; 1 ] in
  let lost = Model.background m 0 +. Model.background m 1 in
  Alcotest.(check (float 1e-6)) "surviving background preserved"
    (total_bg m -. lost) (total_bg m2)

let test_model_failed_sites () =
  let m, c, f0, f1 = small_model () in
  let m2 = Model.with_failed_sites m [ 1 ] in
  Alcotest.(check (float 0.)) "f0@1 gone" 0. (Model.vnf_site_capacity m2 ~vnf:f0 ~site:1);
  Alcotest.(check (float 1e-9)) "f0@0 survives" 50. (Model.vnf_site_capacity m2 ~vnf:f0 ~site:0);
  (* f1 only remains at site 2; routing must adapt. *)
  Alcotest.(check (list int)) "stage 1 candidates shrink" [ 2 ]
    (Model.stage_dst_nodes m2 ~chain:c ~stage:1);
  let r = Dp.solve m2 in
  check_valid "dp on degraded model" r;
  ignore f1

let test_failure_reduces_throughput () =
  let params = { Workload.default with Workload.coverage = 0.4; num_chains = 12 } in
  let m = synth_model ~params () in
  (* Failing a deployment-rich site cannot increase supported throughput. *)
  let before = Routing.max_alpha (Dp.solve ~rng:(Sb_util.Rng.create 1) m) in
  let m2 = Model.with_failed_sites m [ 0 ] in
  let all_deployed =
    List.init (Model.num_vnfs m2) (fun f -> f)
    |> List.for_all (fun f -> Model.vnf_sites m2 f <> [])
  in
  if all_deployed then begin
    let after = Routing.max_alpha (Dp.solve ~rng:(Sb_util.Rng.create 1) m2) in
    Alcotest.(check bool) "throughput does not improve under failure" true
      (after <= before +. 1e-6)
  end


(* ------------------------------ spec ------------------------------- *)

let demo_spec = {spec|
# comment line
node a 0 0
node b 100 0
duplex a b 10 0.005
site a 20
site b 20
vnf fw 1.0
deploy fw a 10
deploy fw b 10
chain c1 a b 2.0 1.0 fw
beta 0.8
|spec}

let test_spec_parse_roundtrip () =
  match Sb_core.Spec.parse demo_spec with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check int) "sites" 2 (Model.num_sites m);
    Alcotest.(check int) "vnfs" 1 (Model.num_vnfs m);
    Alcotest.(check int) "chains" 1 (Model.num_chains m);
    Alcotest.(check (float 1e-9)) "beta" 0.8 (Model.beta m);
    Alcotest.(check (float 1e-9)) "fwd traffic" 2. (Model.fwd_traffic m ~chain:0 ~stage:0);
    (* Round-trip: render and re-parse. *)
    (match Sb_core.Spec.parse (Sb_core.Spec.to_string m) with
    | Error e -> Alcotest.fail ("round-trip: " ^ e)
    | Ok m2 ->
      Alcotest.(check int) "round-trip chains" (Model.num_chains m) (Model.num_chains m2);
      Alcotest.(check (float 1e-9)) "round-trip beta" (Model.beta m) (Model.beta m2);
      Alcotest.(check int) "round-trip links"
        (Sb_net.Topology.num_links (Model.topology m))
        (Sb_net.Topology.num_links (Model.topology m2)))

let test_spec_parse_is_routable () =
  match Sb_core.Spec.parse demo_spec with
  | Error e -> Alcotest.fail e
  | Ok m -> check_valid "spec model routes" (Greedy.anycast m)

let test_spec_synthesized_roundtrip () =
  let m = synth_model () in
  match Sb_core.Spec.parse (Sb_core.Spec.to_string m) with
  | Error e -> Alcotest.fail e
  | Ok m2 ->
    Alcotest.(check int) "chains" (Model.num_chains m) (Model.num_chains m2);
    Alcotest.(check int) "sites" (Model.num_sites m) (Model.num_sites m2);
    Alcotest.(check (float 1e-6)) "demand"
      (Model.total_demand m) (Model.total_demand m2)

let test_spec_errors () =
  let bad_cases =
    [
      "nodeling a 0 0";               (* unknown directive *)
      "node a 0 0\nnode a 1 1";       (* duplicate node *)
      "link a b 10 0.1";              (* unknown nodes *)
      "node a 0 0\nsite a x";         (* not a number *)
      "node a 0 0\nvnf f 1\nchain c a a 1 0 ghost"; (* unknown vnf *)
    ]
  in
  List.iter
    (fun src ->
      match Sb_core.Spec.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" src)
    bad_cases

let test_spec_error_has_line_number () =
  match Sb_core.Spec.parse "node a 0 0\nbogus" with
  | Error e ->
    Alcotest.(check bool) "mentions line 2" true
      (String.length e >= 6 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected error"

(* --------------------------- greedy schemes ------------------------ *)

let test_anycast_picks_nearest () =
  let m, c, _, _ = small_model () in
  let r = Greedy.anycast m in
  check_valid "anycast" r;
  (* From ingress 0, nearest f0 site is node 0; then nearest f1 site is 1. *)
  Alcotest.(check (list (pair (pair int int) (float 1e-9)))) "stage 0 hop"
    [ ((0, 0), 1.) ]
    (List.map (fun (a, b, f) -> ((a, b), f)) (Routing.stage_flows r ~chain:c ~stage:0));
  Alcotest.(check (list (pair (pair int int) (float 1e-9)))) "stage 1 hop"
    [ ((0, 1), 1.) ]
    (List.map (fun (a, b, f) -> ((a, b), f)) (Routing.stage_flows r ~chain:c ~stage:1))

let test_compute_aware_avoids_saturation () =
  (* Two identical chains, f0 capacity only big enough for one at site 0. *)
  let topo = Topology.line ~delays:[ 0.01 ] ~bandwidth:100. in
  let b = Model.builder topo in
  let s0 = Model.add_site b ~node:0 ~capacity:100. in
  let s1 = Model.add_site b ~node:1 ~capacity:100. in
  let f0 = Model.add_vnf b ~name:"fw" ~cpu_per_unit:1. in
  Model.deploy b ~vnf:f0 ~site:s0 ~capacity:6.;
  Model.deploy b ~vnf:f0 ~site:s1 ~capacity:6.;
  let _c1 = Model.add_chain b ~ingress:0 ~egress:1 ~vnfs:[ f0 ] ~fwd:2. () in
  let _c2 = Model.add_chain b ~ingress:0 ~egress:1 ~vnfs:[ f0 ] ~fwd:2. () in
  let m = Model.finalize b () in
  (* Each chain loads f0 by 2 traffic x 2 (in+out) = 4 at its site: a site
     of capacity 6 fits one chain but not two. *)
  let anycast = Greedy.anycast m in
  let aware = Greedy.compute_aware m in
  check_valid "anycast" anycast;
  check_valid "compute-aware" aware;
  Alcotest.(check bool) "compute-aware sustains more" true
    (Routing.max_alpha aware > Routing.max_alpha anycast);
  let st = Routing.load_state aware in
  Alcotest.(check bool) "both sites used" true
    (Load_state.vnf_load st ~vnf:f0 ~site:0 > 0. && Load_state.vnf_load st ~vnf:f0 ~site:1 > 0.)

let test_onehop_valid_on_synth () =
  let m = synth_model () in
  let r = Greedy.onehop m in
  check_valid "onehop" r

let test_greedy_all_valid_on_synth () =
  let m = synth_model () in
  check_valid "anycast" (Greedy.anycast m);
  check_valid "compute-aware" (Greedy.compute_aware m)

(* ------------------------------ SB-DP ------------------------------ *)

let test_dp_best_path_shortest_when_unloaded () =
  let m, c, _, _ = small_model () in
  let st = Load_state.create m in
  match Dp.best_path st ~util_weight:0. ~chain:c with
  | Some nodes ->
    (* Min propagation: f0 at 0 (0ms), f1 at 1, egress 2: total 0.03 —
       equals any other route? f0@1,f1@1: 0.01 + 0 + 0.02 = 0.03 too.
       Either is optimal; just check validity and cost. *)
    let r = Routing.create m in
    Routing.add_path r ~chain:c ~nodes ~frac:1.0;
    check_valid "dp path" r
  | None -> Alcotest.fail "expected a path"

let test_dp_valid_and_conserving () =
  let m = synth_model () in
  let r = Dp.solve ~rng:(Sb_util.Rng.create 1) m in
  check_valid "sb-dp" r

let test_dp_latency_valid () =
  let m = synth_model () in
  let r = Dp.dp_latency m in
  check_valid "dp-latency" r

let test_dp_splits_under_pressure () =
  (* One chain whose traffic exceeds any single deployment: DP must split. *)
  let topo = Topology.line ~delays:[ 0.01 ] ~bandwidth:1000. in
  let b = Model.builder topo in
  let s0 = Model.add_site b ~node:0 ~capacity:1000. in
  let s1 = Model.add_site b ~node:1 ~capacity:1000. in
  let f0 = Model.add_vnf b ~name:"fw" ~cpu_per_unit:1. in
  Model.deploy b ~vnf:f0 ~site:s0 ~capacity:10.;
  Model.deploy b ~vnf:f0 ~site:s1 ~capacity:10.;
  let c = Model.add_chain b ~ingress:0 ~egress:1 ~vnfs:[ f0 ] ~fwd:8. () in
  let m = Model.finalize b () in
  (* Chain load on one deployment = 8*2 = 16 > 10: must split sites. *)
  let r = Dp.solve m in
  check_valid "dp split" r;
  let flows = Routing.stage_flows r ~chain:c ~stage:0 in
  Alcotest.(check bool) "split across two sites" true (List.length flows >= 2);
  Alcotest.(check bool) "supports full load" true (Routing.max_alpha r >= 1. -. 1e-6)

let test_dp_beats_latency_only_on_throughput () =
  let m = synth_model () in
  let sb = Routing.max_alpha (Dp.solve ~rng:(Sb_util.Rng.create 1) m) in
  let lat_only = Routing.max_alpha (Dp.dp_latency m) in
  Alcotest.(check bool) "utilization-aware DP sustains >= latency-only" true
    (sb >= lat_only -. 1e-9)

let test_dp_deterministic_given_seed () =
  let m = synth_model () in
  let a = Routing.max_alpha (Dp.solve ~rng:(Sb_util.Rng.create 9) m) in
  let b = Routing.max_alpha (Dp.solve ~rng:(Sb_util.Rng.create 9) m) in
  Alcotest.(check (float 0.)) "same seed same result" a b

(* ------------------------------ SB-LP ------------------------------ *)

let test_lp_min_latency_optimal_on_small () =
  let m, _, _, _ = small_model ~fwd:1. ~rev:0. () in
  match Lpr.solve m Lpr.Min_latency with
  | Error e -> Alcotest.fail e
  | Ok { routing; objective_value; _ } ->
    check_valid "lp" routing;
    (* Best achievable mean latency is 0.01 (see propagation test). *)
    Alcotest.(check (float 1e-6)) "optimal latency" 0.01 objective_value

let test_lp_throughput_beats_heuristics () =
  let m = synth_model () in
  match Lpr.solve m Lpr.Max_throughput with
  | Error e -> Alcotest.fail e
  | Ok { routing; objective_value; _ } ->
    check_valid "lp tput" routing;
    let dp = Routing.max_alpha (Dp.solve ~rng:(Sb_util.Rng.create 1) m) in
    let any = Routing.max_alpha (Greedy.anycast m) in
    Alcotest.(check bool) "LP >= DP" true (objective_value >= dp -. 1e-6);
    Alcotest.(check bool) "LP >= anycast" true (objective_value >= any -. 1e-6)

let test_lp_throughput_matches_alpha_of_routing () =
  let m = synth_model () in
  match Lpr.solve m Lpr.Max_throughput with
  | Error e -> Alcotest.fail e
  | Ok { routing; objective_value; _ } ->
    (* The extracted routing's supported alpha equals the LP's alpha. *)
    Alcotest.(check (float 0.05)) "alpha consistency" objective_value
      (Routing.max_alpha routing)

let test_lp_respects_mlu () =
  (* Tiny link forces the LP to bound throughput by beta * bandwidth. *)
  let topo = Topology.line ~delays:[ 0.01 ] ~bandwidth:4. in
  let b = Model.builder topo in
  let s0 = Model.add_site b ~node:0 ~capacity:1000. in
  let s1 = Model.add_site b ~node:1 ~capacity:1000. in
  let f0 = Model.add_vnf b ~name:"fw" ~cpu_per_unit:0.001 in
  Model.deploy b ~vnf:f0 ~site:s0 ~capacity:1000.;
  Model.deploy b ~vnf:f0 ~site:s1 ~capacity:1000.;
  let _ = Model.add_chain b ~ingress:0 ~egress:1 ~vnfs:[ f0 ] ~fwd:1. () in
  let m = Model.finalize b ~beta:0.5 () in
  match Lpr.solve m Lpr.Max_throughput with
  | Error e -> Alcotest.fail e
  | Ok { objective_value; _ } ->
    (* Link 0->1 carries w = 1 per unit alpha; bound = 0.5 * 4 = 2. *)
    Alcotest.(check (float 1e-4)) "MLU-bound alpha" 2. objective_value

let test_lp_infeasible_when_over_capacity () =
  let m, _, _, _ = small_model () in
  let m = Model.with_scaled_traffic m 1000. in
  match Lpr.solve m Lpr.Min_latency with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected infeasible"

let test_lp_background_reduces_throughput () =
  let topo = Topology.line ~delays:[ 0.01 ] ~bandwidth:10. in
  let build bg =
    let b = Model.builder topo in
    let s0 = Model.add_site b ~node:0 ~capacity:1000. in
    let s1 = Model.add_site b ~node:1 ~capacity:1000. in
    let f0 = Model.add_vnf b ~name:"fw" ~cpu_per_unit:0.001 in
    Model.deploy b ~vnf:f0 ~site:s0 ~capacity:1000.;
    Model.deploy b ~vnf:f0 ~site:s1 ~capacity:1000.;
    let _ = Model.add_chain b ~ingress:0 ~egress:1 ~vnfs:[ f0 ] ~fwd:1. () in
    Model.finalize b ~background:(fun _ -> bg) ()
  in
  let alpha bg =
    match Lpr.solve (build bg) Lpr.Max_throughput with
    | Ok { objective_value; _ } -> objective_value
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "background eats headroom" true (alpha 5. < alpha 0.)

(* --------------------------- Eval metrics -------------------------- *)

let test_eval_scheme_ordering () =
  let m = synth_model () in
  let tput s = Eval.throughput m s in
  let lp = tput Eval.Sb_lp in
  let dp = tput Eval.Sb_dp in
  let any = tput Eval.Anycast in
  Alcotest.(check bool) "LP >= DP" true (lp >= dp -. 1e-6);
  Alcotest.(check bool) "DP > anycast" true (dp > any);
  Alcotest.(check bool) "anycast positive" true (any > 0.)

let test_eval_latency_increases_with_load () =
  let m = synth_model () in
  let l1 = Eval.latency ~load:0.2 m Eval.Sb_dp in
  let l2 = Eval.latency ~load:0.7 m Eval.Sb_dp in
  Alcotest.(check bool) "latency grows or saturates" true (l2 >= l1 -. 1e-6)

let test_eval_anycast_dies_early () =
  let m = synth_model () in
  let cap = Eval.max_load_factor m Eval.Anycast in
  let beyond = Eval.latency ~load:(cap *. 4.) m Eval.Anycast in
  Alcotest.(check bool) "overloaded anycast saturates" true (beyond = infinity)

let test_eval_route_returns_valid () =
  let m = synth_model () in
  List.iter
    (fun s ->
      match Eval.route m s with
      | Ok r -> check_valid (Eval.scheme_name s) r
      | Error e -> Alcotest.fail e)
    Eval.all_schemes

(* --------------------------- workload ------------------------------ *)

let test_workload_shape () =
  let m = synth_model () in
  let p = Workload.default in
  Alcotest.(check int) "chains" p.Workload.num_chains (Model.num_chains m);
  Alcotest.(check int) "vnfs" p.Workload.num_vnfs (Model.num_vnfs m);
  Alcotest.(check (float 1e-6)) "site capacity" p.Workload.site_capacity
    (Model.site_capacity m 0);
  (* Chain lengths within bounds and VNF ids ascending (consistent order). *)
  for c = 0 to Model.num_chains m - 1 do
    let len = Model.chain_length m c in
    Alcotest.(check bool) "length in range" true
      (len >= p.Workload.min_chain_len && len <= p.Workload.max_chain_len);
    let vnfs = Model.chain_vnfs m c in
    for i = 1 to Array.length vnfs - 1 do
      Alcotest.(check bool) "consistent VNF order" true (vnfs.(i - 1) < vnfs.(i))
    done
  done

let test_workload_traffic_total () =
  let m = synth_model () in
  let p = Workload.default in
  (* Sum of per-chain fwd traffic (one stage's worth) = total_traffic. *)
  let total = ref 0. in
  for c = 0 to Model.num_chains m - 1 do
    total := !total +. Model.fwd_traffic m ~chain:c ~stage:0
  done;
  Alcotest.(check (float 1e-6)) "total traffic" p.Workload.total_traffic !total

let test_workload_coverage () =
  let m = synth_model () in
  let p = Workload.default in
  let expected = int_of_float (Float.round (p.Workload.coverage *. float_of_int (Model.num_sites m))) in
  for f = 0 to Model.num_vnfs m - 1 do
    Alcotest.(check int) "coverage sites" expected (List.length (Model.vnf_sites m f))
  done

let test_workload_site_capacity_division () =
  let m = synth_model () in
  (* Sum of m_sf at a site equals the site capacity (capacity divided among
     VNFs present). *)
  for s = 0 to Model.num_sites m - 1 do
    let sum = ref 0. in
    for f = 0 to Model.num_vnfs m - 1 do
      sum := !sum +. Model.vnf_site_capacity m ~vnf:f ~site:s
    done;
    if !sum > 0. then
      Alcotest.(check (float 1e-6)) "site capacity divided" (Model.site_capacity m s) !sum
  done

let test_workload_background_positive () =
  let m = synth_model () in
  let topo = Model.topology m in
  let any_bg = ref false in
  for e = 0 to Topology.num_links topo - 1 do
    if Model.background m e > 0. then any_bg := true
  done;
  Alcotest.(check bool) "background traffic present" true !any_bg

(* ------------------------- capacity planning ----------------------- *)

let test_capacity_optimize_beats_uniform () =
  let m = synth_model () in
  let budget = 200. in
  match (Capacity.optimize m ~budget, Capacity.uniform m ~budget) with
  | Ok opt, Ok uni ->
    Alcotest.(check bool) "optimized >= uniform" true
      (opt.Capacity.alpha >= uni.Capacity.alpha -. 1e-6);
    let spent = Array.fold_left ( +. ) 0. opt.Capacity.allocation in
    Alcotest.(check bool) "budget respected" true (spent <= budget +. 1e-4)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_capacity_zero_budget_noop () =
  let m = synth_model () in
  match (Capacity.optimize m ~budget:0., Lpr.solve m Lpr.Max_throughput) with
  | Ok plan, Ok { objective_value; _ } ->
    Alcotest.(check (float 1e-4)) "zero budget = plain LP" objective_value plan.Capacity.alpha
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_capacity_monotone_in_budget () =
  let m = synth_model () in
  match (Capacity.optimize m ~budget:50., Capacity.optimize m ~budget:400.) with
  | Ok small, Ok large ->
    Alcotest.(check bool) "more budget, more throughput" true
      (large.Capacity.alpha >= small.Capacity.alpha -. 1e-6)
  | Error e, _ | _, Error e -> Alcotest.fail e

(* --------------------------- placement ----------------------------- *)

let test_placement_suggest_improves_latency () =
  let params = { Workload.default with Workload.coverage = 0.25 } in
  let m = synth_model ~params () in
  let better = Placement.suggest m ~new_sites_per_vnf:2 in
  let random = Placement.random ~rng:(Sb_util.Rng.create 5) m ~new_sites_per_vnf:2 in
  let lat mm = Routing.propagation_latency (Dp.dp_latency mm) in
  let base = lat m in
  let sugg = lat better in
  let rand = lat random in
  Alcotest.(check bool) "suggested placement helps vs base" true (sugg <= base +. 1e-9);
  Alcotest.(check bool) "suggested <= random" true (sugg <= rand +. 1e-9)

let test_placement_adds_requested_sites () =
  let params = { Workload.default with Workload.coverage = 0.25 } in
  let m = synth_model ~params () in
  let m2 = Placement.suggest m ~new_sites_per_vnf:2 in
  for f = 0 to Model.num_vnfs m - 1 do
    Alcotest.(check int) "two more sites"
      (List.length (Model.vnf_sites m f) + 2)
      (List.length (Model.vnf_sites m2 f))
  done

let test_placement_mip_small () =
  (* Tiny instance: MIP should return a placement that covers demand. *)
  let topo = Topology.line ~delays:[ 0.01; 0.01; 0.01 ] ~bandwidth:100. in
  let b = Model.builder topo in
  let sites = Array.init 4 (fun n -> Model.add_site b ~node:n ~capacity:100.) in
  let f = Model.add_vnf b ~name:"fw" ~cpu_per_unit:1. in
  Model.deploy b ~vnf:f ~site:sites.(0) ~capacity:50.;
  let _ = Model.add_chain b ~ingress:3 ~egress:3 ~vnfs:[ f ] ~fwd:1. () in
  let m = Model.finalize b () in
  match Placement.mip m ~new_sites_per_vnf:1 with
  | Some m2 ->
    (* The MIP should open the site nearest the demand (node 3). *)
    Alcotest.(check bool) "deployment added" true
      (List.length (Model.vnf_sites m2 f) = 2);
    Alcotest.(check bool) "opens site 3" true
      (Model.vnf_site_capacity m2 ~vnf:f ~site:sites.(3) > 0.)
  | None -> Alcotest.fail "MIP found no placement"


(* ---------- deployment edits: the placement-loop substrate ---------- *)

module Instance = Sb_core.Instance

let test_recompile_deployment_switches_view () =
  let m, c, f0, _ = small_model () in
  let inst = Instance.compile m in
  Alcotest.(check int) "epoch starts at 0" 0 (Instance.deployment_epoch inst);
  let m2 = Model.with_extra_deployments m [ (f0, 2, 50.) ] in
  Instance.recompile_deployment inst m2;
  Alcotest.(check int) "epoch bumped" 1 (Instance.deployment_epoch inst);
  (* The recompiled view matches a fresh compile of the edited model. *)
  let fresh = Instance.compile m2 in
  for stage = 0 to Model.num_stages m2 c - 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "stage %d dst nodes after scale-out" stage)
      (Instance.stage_dst_nodes fresh ~chain:c ~stage)
      (Instance.stage_dst_nodes inst ~chain:c ~stage)
  done;
  (* The scale-in edit round-trips back to the original view. *)
  let m3 = Model.without_deployments m2 [ (f0, 2) ] in
  Instance.recompile_deployment inst m3;
  Alcotest.(check int) "epoch bumped again" 2 (Instance.deployment_epoch inst);
  let orig = Instance.compile m in
  for stage = 0 to Model.num_stages m c - 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "stage %d dst nodes back to original" stage)
      (Instance.stage_dst_nodes orig ~chain:c ~stage)
      (Instance.stage_dst_nodes inst ~chain:c ~stage)
  done

let test_recompile_deployment_rejects_different_shape () =
  let m, _, _, _ = small_model () in
  let inst = Instance.compile m in
  (* Same topology, different site/VNF/chain shape. *)
  let topo = Topology.line ~delays:[ 0.01; 0.02 ] ~bandwidth:100. in
  let b = Model.builder topo in
  let s0 = Model.add_site b ~node:0 ~capacity:100. in
  let f = Model.add_vnf b ~name:"fw" ~cpu_per_unit:1. in
  Model.deploy b ~vnf:f ~site:s0 ~capacity:50.;
  let _ = Model.add_chain b ~ingress:0 ~egress:2 ~vnfs:[ f ] ~fwd:1. () in
  let other = Model.finalize b () in
  match Instance.recompile_deployment inst other with
  | () -> Alcotest.fail "structurally different model accepted"
  | exception Invalid_argument _ -> ()

let test_without_deployments_validates_ids () =
  let m, _, f0, f1 = small_model () in
  (* A pair that is not deployed is ignored: f0 lives at sites 0 and 1. *)
  let same = Model.without_deployments m [ (f0, 2) ] in
  for f = 0 to Model.num_vnfs m - 1 do
    Alcotest.(check bool) "no-op on non-deployed pair" true
      (Model.vnf_sites same f = Model.vnf_sites m f)
  done;
  (match Model.without_deployments m [ (f1, 99) ] with
  | _ -> Alcotest.fail "unknown site accepted"
  | exception Invalid_argument _ -> ());
  match Model.without_deployments m [ (99, 0) ] with
  | _ -> Alcotest.fail "unknown vnf accepted"
  | exception Invalid_argument _ -> ()

(* ------------------- placement constraints (§4.3) ------------------- *)

let constrained_model () =
  synth_model ~params:{ Workload.default with Workload.coverage = 0.25 } ()

let test_placement_anti_affinity_honoured () =
  let m = constrained_model () in
  let a = 0 and b = 1 in
  let cs =
    { Placement.no_constraints with Placement.anti_affinity = [ (a, b) ] }
  in
  let picks =
    Placement.suggest_inst ~constraints:cs (Instance.compile m)
      ~new_sites_per_vnf:2
  in
  Alcotest.(check bool) "constrained greedy still opens sites" true (picks <> []);
  (* Neither a new open next to an existing deployment of the partner,
     nor two new opens at one site. *)
  let sites v =
    List.map fst (Model.vnf_sites m v)
    @ List.filter_map (fun (v', s, _) -> if v' = v then Some s else None) picks
  in
  List.iter
    (fun (v, s, _) ->
      let partner = if v = a then Some b else if v = b then Some a else None in
      match partner with
      | Some p when List.mem s (sites p) ->
        Alcotest.failf "anti-affinity violated: vnf %d opened at site %d next to vnf %d"
          v s p
      | _ -> ())
    picks

let test_placement_cloud_caps_honoured () =
  let m = constrained_model () in
  (* Cloud 0 = even sites, closed; cloud 1 = odd sites, 2 new opens. *)
  let cs =
    {
      Placement.no_constraints with
      Placement.cloud_of = (fun s -> s mod 2);
      cloud_capacity = (fun c -> if c = 0 then 0 else 2);
    }
  in
  let picks =
    Placement.suggest_inst ~constraints:cs (Instance.compile m)
      ~new_sites_per_vnf:2
  in
  Alcotest.(check bool) "open cloud used" true (picks <> []);
  List.iter
    (fun (_, s, _) ->
      if s mod 2 = 0 then Alcotest.failf "opened site %d in the closed cloud" s)
    picks;
  Alcotest.(check bool) "per-cloud budget respected" true (List.length picks <= 2)

let test_placement_no_constraints_bit_identical () =
  let m = constrained_model () in
  let inst = Instance.compile m in
  Alcotest.(check bool) "suggest_inst unchanged by explicit no_constraints" true
    (Placement.suggest_inst inst ~new_sites_per_vnf:2
    = Placement.suggest_inst ~constraints:Placement.no_constraints inst
        ~new_sites_per_vnf:2);
  let lat mm = Routing.propagation_latency (Dp.dp_latency mm) in
  Alcotest.(check (float 0.)) "suggest unchanged by explicit no_constraints"
    (lat (Placement.suggest m ~new_sites_per_vnf:2))
    (lat (Placement.suggest ~constraints:Placement.no_constraints m ~new_sites_per_vnf:2))

(* --------------------------- edge cases ---------------------------- *)

let test_lp_cloud_budget_requires_throughput () =
  let m, _, _, _ = small_model () in
  Alcotest.check_raises "budget with min-latency"
    (Invalid_argument "Lp_routing.solve: cloud_budget requires Max_throughput") (fun () ->
      ignore (Lpr.solve ~cloud_budget:10. m Lpr.Min_latency))

let test_eval_lp_fallback_over_capacity () =
  (* Demand far beyond capacity: min-latency LP is infeasible, Eval.route
     must fall back to the throughput objective and still return a valid
     (fraction-normalized) routing. *)
  let m, _, _, _ = small_model () in
  let m = Model.with_scaled_traffic m 100. in
  match Eval.route m Eval.Sb_lp with
  | Ok r -> check_valid "fallback routing" r
  | Error e -> Alcotest.fail e

let test_mip_node_limit () =
  let module Lp = Sb_lp.Lp in
  let p = Lp.create () in
  let vars = Array.init 12 (fun i -> Lp.add_var p ~ub:1. ~integer:true (Printf.sprintf "b%d" i)) in
  Lp.add_constraint p
    (Array.to_list (Array.mapi (fun i v -> (1. +. (0.13 *. float_of_int i), v)) vars))
    Sb_lp.Lp.Le 3.7;
  Lp.set_objective p Lp.Maximize (Array.to_list (Array.map (fun v -> (1., v)) vars));
  (match Sb_lp.Mip.solve ~max_nodes:2 p with
  | Sb_lp.Mip.Node_limit _ -> ()
  | Sb_lp.Mip.Optimal _ -> Alcotest.fail "2 nodes cannot prove optimality here"
  | _ -> Alcotest.fail "unexpected outcome")

let test_workload_invalid_params () =
  let rng = Sb_util.Rng.create 1 in
  let topo = Topology.line ~delays:[ 0.01 ] ~bandwidth:10. in
  Alcotest.check_raises "bad coverage" (Invalid_argument "Workload: coverage out of (0,1]")
    (fun () ->
      ignore
        (Workload.synthesize ~rng topo { Workload.default with Workload.coverage = 0. }));
  Alcotest.check_raises "catalog too small"
    (Invalid_argument "Workload: catalog smaller than max chain length") (fun () ->
      ignore
        (Workload.synthesize ~rng topo
           { Workload.default with Workload.num_vnfs = 2; max_chain_len = 5 }))

let test_placement_zero_sites_noop () =
  let m = synth_model () in
  let m2 = Placement.suggest m ~new_sites_per_vnf:0 in
  for f = 0 to Model.num_vnfs m - 1 do
    Alcotest.(check int) "deployments unchanged"
      (List.length (Model.vnf_sites m f))
      (List.length (Model.vnf_sites m2 f))
  done

let test_dp_unroutable_chain () =
  (* Disconnect the network between ingress and the only deployment: SB-DP
     finds no path and leaves the chain unrouted (validate flags it). *)
  let topo = Topology.create () in
  let a = Topology.add_node topo "a" in
  let b = Topology.add_node topo "b" in
  (* no links *)
  let bld = Model.builder topo in
  let sb_site = Model.add_site bld ~node:b ~capacity:10. in
  let f = Model.add_vnf bld ~name:"fw" ~cpu_per_unit:1. in
  Model.deploy bld ~vnf:f ~site:sb_site ~capacity:10.;
  let c = Model.add_chain bld ~ingress:a ~egress:b ~vnfs:[ f ] ~fwd:1. () in
  let m = Model.finalize bld () in
  let st = Load_state.create m in
  Alcotest.(check bool) "no path" true
    (Dp.best_path st ~util_weight:0. ~chain:c = None);
  let r = Dp.solve m in
  match Routing.validate r with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unroutable chain must fail validation"

let test_spec_missing_file () =
  match Sb_core.Spec.load_file "/nonexistent/path.sbs" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected file error"



let test_spec_chainm_roundtrip () =
  let src = {spec|
node o1 0 0
node o2 100 0
node hq 50 80
duplex o1 hq 10 0.004
duplex o2 hq 10 0.004
site hq 20
vnf fw 1.0
deploy fw hq 10
chainm up o1:2,o2:1 hq 3.0 1.0 fw
|spec}
  in
  match Sb_core.Spec.parse src with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check (list (pair int (float 1e-9)))) "parsed ingress shares"
      [ (0, 2. /. 3.); (1, 1. /. 3.) ]
      (Model.chain_ingresses m 0);
    check_valid "chainm routes" (Greedy.anycast m);
    (* Round-trips through chainm serialization. *)
    (match Sb_core.Spec.parse (Sb_core.Spec.to_string m) with
    | Error e -> Alcotest.fail ("round-trip: " ^ e)
    | Ok m2 ->
      Alcotest.(check (list (pair int (float 1e-9)))) "round-trip shares"
        (Model.chain_ingresses m 0) (Model.chain_ingresses m2 0))

(* --------------------- multi-ingress / multi-egress ---------------- *)

(* A 4-node line with sites everywhere and one firewall; a chain entering
   at nodes 0 (2/3) and 3 (1/3), leaving at nodes 1 (1/2) and 2 (1/2). *)
let multi_endpoint_model () =
  let topo = Topology.line ~delays:[ 0.01; 0.01; 0.01 ] ~bandwidth:100. in
  let b = Model.builder topo in
  let sites = Array.init 4 (fun n -> Model.add_site b ~node:n ~capacity:100.) in
  let fw = Model.add_vnf b ~name:"fw" ~cpu_per_unit:1. in
  Model.deploy b ~vnf:fw ~site:sites.(1) ~capacity:60.;
  Model.deploy b ~vnf:fw ~site:sites.(2) ~capacity:60.;
  let c =
    Model.add_chain_endpoints b ~name:"multi"
      ~ingresses:[ (0, 2.); (3, 1.) ]
      ~egresses:[ (1, 1.); (2, 1.) ]
      ~vnfs:[ fw ] ~fwd:3. ~rev:1. ()
  in
  (Model.finalize b (), c, fw)

let test_multi_endpoint_shares_normalized () =
  let m, c, _ = multi_endpoint_model () in
  Alcotest.(check (list (pair int (float 1e-9)))) "ingress shares"
    [ (0, 2. /. 3.); (3, 1. /. 3.) ]
    (Model.chain_ingresses m c);
  Alcotest.(check (list (pair int (float 1e-9)))) "egress shares"
    [ (1, 0.5); (2, 0.5) ]
    (Model.chain_egresses m c);
  Alcotest.(check (list int)) "stage-0 sources" [ 0; 3 ]
    (Model.stage_src_nodes m ~chain:c ~stage:0);
  Alcotest.(check (list int)) "final-stage destinations" [ 1; 2 ]
    (Model.stage_dst_nodes m ~chain:c ~stage:1)

let test_multi_endpoint_validation () =
  let topo = Topology.line ~delays:[ 0.01 ] ~bandwidth:10. in
  let b = Model.builder topo in
  let s = Model.add_site b ~node:0 ~capacity:10. in
  let f = Model.add_vnf b ~name:"x" ~cpu_per_unit:1. in
  Model.deploy b ~vnf:f ~site:s ~capacity:10.;
  Alcotest.check_raises "empty ingress"
    (Invalid_argument "Model.add_chain: empty ingress list") (fun () ->
      ignore (Model.add_chain_endpoints b ~ingresses:[] ~egresses:[ (0, 1.) ] ~vnfs:[ f ] ~fwd:1. ()));
  Alcotest.check_raises "duplicate egress"
    (Invalid_argument "Model.add_chain: duplicate egress node") (fun () ->
      ignore
        (Model.add_chain_endpoints b ~ingresses:[ (0, 1.) ]
           ~egresses:[ (1, 1.); (1, 1.) ] ~vnfs:[ f ] ~fwd:1. ()));
  Alcotest.check_raises "bad share"
    (Invalid_argument "Model.add_chain: non-positive ingress share") (fun () ->
      ignore
        (Model.add_chain_endpoints b ~ingresses:[ (0, 0.) ] ~egresses:[ (1, 1.) ]
           ~vnfs:[ f ] ~fwd:1. ()))

let check_endpoint_shares m c r =
  (* Validate already checks this, but assert it explicitly too. *)
  check_valid "multi-endpoint routing" r;
  List.iter
    (fun (node, share) ->
      let out =
        List.fold_left
          (fun acc (s, _, f) -> if s = node then acc +. f else acc)
          0.
          (Routing.stage_flows r ~chain:c ~stage:0)
      in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "ingress %d share" node) share out)
    (Model.chain_ingresses m c);
  List.iter
    (fun (node, share) ->
      let last = Model.num_stages m c - 1 in
      let inflow =
        List.fold_left
          (fun acc (_, d, f) -> if d = node then acc +. f else acc)
          0.
          (Routing.stage_flows r ~chain:c ~stage:last)
      in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "egress %d share" node) share inflow)
    (Model.chain_egresses m c)

let test_multi_endpoint_greedy () =
  let m, c, _ = multi_endpoint_model () in
  check_endpoint_shares m c (Greedy.anycast m);
  check_endpoint_shares m c (Greedy.compute_aware m)

let test_multi_endpoint_dp () =
  let m, c, _ = multi_endpoint_model () in
  check_endpoint_shares m c (Dp.solve m);
  check_endpoint_shares m c (Dp.dp_latency m)

let test_multi_endpoint_lp () =
  let m, c, _ = multi_endpoint_model () in
  (match Lpr.solve m Lpr.Min_latency with
  | Ok { routing; _ } -> check_endpoint_shares m c routing
  | Error e -> Alcotest.fail e);
  match Lpr.solve m Lpr.Max_throughput with
  | Ok { routing; objective_value; _ } ->
    check_endpoint_shares m c routing;
    Alcotest.(check bool) "positive throughput" true (objective_value > 0.)
  | Error e -> Alcotest.fail e

let test_multi_endpoint_lp_dominates_dp () =
  let m, _, _ = multi_endpoint_model () in
  match Lpr.solve m Lpr.Max_throughput with
  | Ok { objective_value; _ } ->
    Alcotest.(check bool) "LP >= DP on multi-endpoint chains" true
      (objective_value >= Routing.max_alpha (Dp.solve m) -. 1e-6)
  | Error e -> Alcotest.fail e

let test_multi_endpoint_decompose () =
  let m, c, _ = multi_endpoint_model () in
  let r = Dp.solve m in
  let paths = Routing.decompose_paths r ~chain:c in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. paths in
  Alcotest.(check (float 1e-6)) "paths cover all shares" 1.0 total;
  (* Every decomposed path starts at an ingress and ends at an egress. *)
  List.iter
    (fun (nodes, _) ->
      Alcotest.(check bool) "starts at an ingress" true
        (List.mem_assoc nodes.(0) (Model.chain_ingresses m c));
      Alcotest.(check bool) "ends at an egress" true
        (List.mem_assoc nodes.(Array.length nodes - 1) (Model.chain_egresses m c)))
    paths

(* --------------------------- properties ---------------------------- *)

let prop_schemes_always_valid =
  QCheck.Test.make ~name:"heuristic routings always validate" ~count:15
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sb_util.Rng.create seed in
      let topo = Topology.backbone ~rng ~num_core:4 ~pops_per_core:1 () in
      let params =
        { Workload.default with Workload.num_chains = 8; num_vnfs = 6; max_chain_len = 4 }
      in
      let m = Workload.synthesize ~rng topo params in
      let ok r = Routing.validate r = Ok () in
      ok (Greedy.anycast m) && ok (Greedy.compute_aware m)
      && ok (Dp.solve ~rng:(Sb_util.Rng.create seed) m)
      && ok (Dp.dp_latency m))

let prop_lp_dominates_dp =
  QCheck.Test.make ~name:"LP throughput >= DP throughput" ~count:5
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sb_util.Rng.create seed in
      let topo = Topology.backbone ~rng ~num_core:4 ~pops_per_core:1 () in
      let params =
        { Workload.default with Workload.num_chains = 8; num_vnfs = 6; max_chain_len = 4 }
      in
      let m = Workload.synthesize ~rng topo params in
      match Lpr.solve m Lpr.Max_throughput with
      | Ok { objective_value; _ } ->
        objective_value
        >= Routing.max_alpha (Dp.solve ~rng:(Sb_util.Rng.create seed) m) -. 1e-6
      | Error _ -> false)

let prop_routing_packed_roundtrip =
  QCheck.Test.make ~name:"packed Routing round-trips the legacy list API" ~count:10
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sb_util.Rng.create seed in
      let topo = Topology.backbone ~rng ~num_core:4 ~pops_per_core:1 () in
      let params =
        { Workload.default with Workload.num_chains = 8; num_vnfs = 6; max_chain_len = 4 }
      in
      let m = Workload.synthesize ~rng topo params in
      (* Every engine's output must validate, and must survive a rebuild
         through the legacy list API: stage_flows -> set_stage reproduces
         the packed stores exactly, decompose_paths -> add_path yields an
         equivalent routing. *)
      let engines =
        [ Greedy.anycast m; Greedy.compute_aware m; Greedy.onehop m;
          Dp.solve ~rng:(Sb_util.Rng.create seed) m; Dp.dp_latency m ]
        @
        match Lpr.solve m Lpr.Max_throughput with
        | Ok { routing; _ } -> [ routing ]
        | Error _ -> []
      in
      List.for_all
        (fun r ->
          Routing.validate r = Ok ()
          &&
          let r2 = Routing.create m in
          let same = ref true in
          for c = 0 to Model.num_chains m - 1 do
            for z = 0 to Model.num_stages m c - 1 do
              Routing.set_stage r2 ~chain:c ~stage:z
                (Routing.stage_flows r ~chain:c ~stage:z)
            done
          done;
          for c = 0 to Model.num_chains m - 1 do
            for z = 0 to Model.num_stages m c - 1 do
              if
                Routing.stage_flows r2 ~chain:c ~stage:z
                <> Routing.stage_flows r ~chain:c ~stage:z
              then same := false
            done
          done;
          !same
          && Routing.max_alpha r2 = Routing.max_alpha r
          &&
          let r3 = Routing.create m in
          for c = 0 to Model.num_chains m - 1 do
            List.iter
              (fun (nodes, frac) -> Routing.add_path r3 ~chain:c ~nodes ~frac)
              (Routing.decompose_paths r ~chain:c)
          done;
          Routing.validate r3 = Ok ()
          && Float.abs (Routing.max_alpha r3 -. Routing.max_alpha r) < 1e-6)
        engines)

(* ------------------- DP determinism and goldens -------------------- *)

(* The Fig. 12/13 scenario at its default scale (see bench/main.ml). *)
let golden_te_model ~coverage () =
  let rng = Sb_util.Rng.create 42 in
  let topo = Topology.backbone ~rng ~num_core:4 ~pops_per_core:1 () in
  Workload.synthesize ~rng topo
    { Workload.default with Workload.coverage; num_chains = 16 }

let test_dp_deterministic_without_rng () =
  (* Without [?rng] the solve must be a pure function of the model: chains
     are routed in id order and every tie-break is deterministic. *)
  let m = golden_te_model ~coverage:0.5 () in
  let r1 = Dp.solve m in
  let r2 = Dp.solve m in
  Alcotest.(check (float 0.)) "alpha reproducible" (Routing.max_alpha r1)
    (Routing.max_alpha r2);
  Alcotest.(check (float 0.)) "latency reproducible"
    (Routing.propagation_latency r1)
    (Routing.propagation_latency r2);
  for c = 0 to Model.num_chains m - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "chain %d same path decomposition" c)
      true
      (Routing.decompose_paths r1 ~chain:c = Routing.decompose_paths r2 ~chain:c)
  done

(* Golden Eval metrics captured from the seed implementation (pre-dating
   the packed path fabric, heap Dijkstra, and stage-cost cache): the
   rewrite must not change any routing decision, so these reproduce to
   float tolerance. Columns: with rng seed 1 (alpha, propagation latency,
   mean latency), then without rng (alpha, propagation latency). *)
let dp_golden_cases =
  [
    (0.25, (0.60323767217758595, 0.0093533713980553362, infinity),
     (0.50427490356457028, 0.0093108567852043418));
    (0.50, (1., 0.0061128698955647889, 0.012508888241686398),
     (1., 0.0062414536217129876));
    (0.75, (1., 0.004580620845436395, 0.013261243539377557),
     (1., 0.0062986409779017104));
    (1.00, (1., 0.003187872999863315, 0.025520269554236991),
     (0.99999999999999978, 0.0043748460553561476));
  ]

let test_dp_matches_seed_goldens () =
  List.iter
    (fun (coverage, (g_alpha, g_lat, g_mean), (g_alpha0, g_lat0)) ->
      let m = golden_te_model ~coverage () in
      let r = Dp.solve ~rng:(Sb_util.Rng.create 1) m in
      let label fmt = Printf.sprintf "%s at coverage %.2f" fmt coverage in
      Alcotest.(check (float 1e-9)) (label "alpha") g_alpha (Routing.max_alpha r);
      Alcotest.(check (float 1e-9)) (label "prop latency") g_lat
        (Routing.propagation_latency r);
      (if g_mean = infinity then
         Alcotest.(check bool) (label "mean latency saturated") true
           (Routing.mean_latency r = infinity)
       else
         Alcotest.(check (float 1e-9)) (label "mean latency") g_mean
           (Routing.mean_latency r));
      let r0 = Dp.solve m in
      Alcotest.(check (float 1e-9)) (label "alpha, no rng") g_alpha0
        (Routing.max_alpha r0);
      Alcotest.(check (float 1e-9)) (label "prop latency, no rng") g_lat0
        (Routing.propagation_latency r0))
    dp_golden_cases

(* Golden Eval metrics for every scheme on the coverage-0.5 TE scenario,
   captured from the seed implementation (pre-dating the packed instance,
   routing stores and evaluation arena): throughput = max_load_factor *
   total demand with the default seed, and mean latency at load 0.5. The
   instance rewrite must not change a single routing decision, so these
   reproduce to float tolerance. *)
let eval_golden_cases =
  [
    (Eval.Anycast, 89.675120167187061, infinity);
    (Eval.Compute_aware, 166.44956062310848, 0.0055859034078466303);
    (Eval.Onehop, 153.92111631429898, 0.0063078491054413969);
    (Eval.Dp_latency, 96.421010947344882, infinity);
    (Eval.Sb_dp, 236.25090035987967, 0.0043402356235188603);
    (Eval.Sb_lp, 238.88346859901498, 0.0039278231771229036);
  ]

let test_eval_matches_seed_goldens () =
  let m = golden_te_model ~coverage:0.5 () in
  List.iter
    (fun (scheme, g_tput, g_lat) ->
      let label fmt = Printf.sprintf "%s %s" (Eval.scheme_name scheme) fmt in
      Alcotest.(check (float 1e-9)) (label "throughput") g_tput
        (Eval.throughput m scheme);
      let lat = Eval.latency ~load:0.5 m scheme in
      if g_lat = infinity then
        Alcotest.(check bool) (label "latency saturated") true (lat = infinity)
      else Alcotest.(check (float 1e-9)) (label "latency at load 0.5") g_lat lat)
    eval_golden_cases

let test_eval_grids_match_scalar () =
  (* The domain-fanned grids must agree exactly with the scalar entry
     points, whatever the domain count. *)
  let m = golden_te_model ~coverage:0.5 () in
  let schemes = [| Eval.Anycast; Eval.Sb_dp |] in
  let tg = Eval.throughput_grid [| m |] schemes in
  Array.iteri
    (fun j s ->
      Alcotest.(check (float 0.)) (Eval.scheme_name s ^ " grid throughput")
        (Eval.throughput m s) tg.(0).(j))
    schemes;
  let loads = [| 0.25; 0.5 |] in
  let lg = Eval.latency_grid ~loads m schemes in
  Array.iteri
    (fun i load ->
      Array.iteri
        (fun j s ->
          let v = Eval.latency ~load m s in
          if v = infinity then
            Alcotest.(check bool)
              (Printf.sprintf "%s grid latency inf at %.2f" (Eval.scheme_name s) load)
              true (lg.(i).(j) = infinity)
          else
            Alcotest.(check (float 0.))
              (Printf.sprintf "%s grid latency at %.2f" (Eval.scheme_name s) load)
              v lg.(i).(j))
        schemes)
    loads

let () =
  Alcotest.run "sb_core"
    [
      ( "model",
        [
          Alcotest.test_case "accessors" `Quick test_model_accessors;
          Alcotest.test_case "total demand" `Quick test_model_total_demand;
          Alcotest.test_case "traffic scaling" `Quick test_model_scaling;
          Alcotest.test_case "capacity delta" `Quick test_model_capacity_delta;
          Alcotest.test_case "extra deployments" `Quick test_model_extra_deployments;
          Alcotest.test_case "validation" `Quick test_model_validation;
          Alcotest.test_case "chain traffic factors" `Quick test_model_chain_traffic_factors;
          Alcotest.test_case "failed links" `Quick test_model_failed_links;
          Alcotest.test_case "failed links keep background" `Quick
            test_model_failed_links_preserves_background;
          Alcotest.test_case "failed sites" `Quick test_model_failed_sites;
          Alcotest.test_case "failure reduces throughput" `Quick test_failure_reduces_throughput;

        ] );
      ( "spec",
        [
          Alcotest.test_case "parse + roundtrip" `Quick test_spec_parse_roundtrip;
          Alcotest.test_case "parsed model routes" `Quick test_spec_parse_is_routable;
          Alcotest.test_case "synthesized roundtrip" `Quick test_spec_synthesized_roundtrip;
          Alcotest.test_case "rejects malformed input" `Quick test_spec_errors;
          Alcotest.test_case "errors carry line numbers" `Quick test_spec_error_has_line_number;
          Alcotest.test_case "chainm multi-endpoint roundtrip" `Quick test_spec_chainm_roundtrip;
        ] );
      ( "routing",
        [
          Alcotest.test_case "single path valid" `Quick test_routing_single_path_valid;
          Alcotest.test_case "split valid" `Quick test_routing_split_valid;
          Alcotest.test_case "detects underflow" `Quick test_routing_detects_underflow;
          Alcotest.test_case "detects bad site" `Quick test_routing_detects_bad_site;
          Alcotest.test_case "detects conservation violation" `Quick
            test_routing_detects_conservation_violation;
          Alcotest.test_case "alpha bottleneck" `Quick test_routing_alpha_bottleneck;
          Alcotest.test_case "load-state counts" `Quick test_routing_load_state_counts;
          Alcotest.test_case "propagation latency" `Quick test_routing_latency_propagation;
          Alcotest.test_case "queueing saturation" `Quick test_routing_queueing_saturation;
          Alcotest.test_case "decompose roundtrip" `Quick test_decompose_roundtrip;
          Alcotest.test_case "decompose LP routing" `Slow test_decompose_lp_routing;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "anycast nearest" `Quick test_anycast_picks_nearest;
          Alcotest.test_case "compute-aware avoids saturation" `Quick
            test_compute_aware_avoids_saturation;
          Alcotest.test_case "onehop valid" `Quick test_onehop_valid_on_synth;
          Alcotest.test_case "all valid on synth" `Quick test_greedy_all_valid_on_synth;
        ] );
      ( "dp",
        [
          Alcotest.test_case "best path when unloaded" `Quick
            test_dp_best_path_shortest_when_unloaded;
          Alcotest.test_case "valid and conserving" `Quick test_dp_valid_and_conserving;
          Alcotest.test_case "dp-latency valid" `Quick test_dp_latency_valid;
          Alcotest.test_case "splits under pressure" `Quick test_dp_splits_under_pressure;
          Alcotest.test_case "beats latency-only on throughput" `Quick
            test_dp_beats_latency_only_on_throughput;
          Alcotest.test_case "deterministic given seed" `Quick test_dp_deterministic_given_seed;
          Alcotest.test_case "deterministic without rng" `Quick
            test_dp_deterministic_without_rng;
          Alcotest.test_case "matches seed goldens" `Quick test_dp_matches_seed_goldens;
        ] );
      ( "lp",
        [
          Alcotest.test_case "min latency optimal" `Quick test_lp_min_latency_optimal_on_small;
          Alcotest.test_case "throughput beats heuristics" `Slow
            test_lp_throughput_beats_heuristics;
          Alcotest.test_case "alpha consistency" `Slow test_lp_throughput_matches_alpha_of_routing;
          Alcotest.test_case "respects MLU" `Quick test_lp_respects_mlu;
          Alcotest.test_case "infeasible over capacity" `Quick
            test_lp_infeasible_when_over_capacity;
          Alcotest.test_case "background reduces throughput" `Quick
            test_lp_background_reduces_throughput;
        ] );
      ( "eval",
        [
          Alcotest.test_case "scheme ordering" `Slow test_eval_scheme_ordering;
          Alcotest.test_case "latency grows with load" `Slow test_eval_latency_increases_with_load;
          Alcotest.test_case "anycast dies early" `Slow test_eval_anycast_dies_early;
          Alcotest.test_case "routes valid" `Slow test_eval_route_returns_valid;
          Alcotest.test_case "matches seed goldens" `Slow test_eval_matches_seed_goldens;
          Alcotest.test_case "grids match scalar" `Slow test_eval_grids_match_scalar;
        ] );
      ( "workload",
        [
          Alcotest.test_case "shape" `Quick test_workload_shape;
          Alcotest.test_case "traffic total" `Quick test_workload_traffic_total;
          Alcotest.test_case "coverage" `Quick test_workload_coverage;
          Alcotest.test_case "capacity division" `Quick test_workload_site_capacity_division;
          Alcotest.test_case "background present" `Quick test_workload_background_positive;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "optimize beats uniform" `Slow test_capacity_optimize_beats_uniform;
          Alcotest.test_case "zero budget noop" `Slow test_capacity_zero_budget_noop;
          Alcotest.test_case "monotone in budget" `Slow test_capacity_monotone_in_budget;
        ] );
      ( "placement",
        [
          Alcotest.test_case "suggest improves latency" `Quick
            test_placement_suggest_improves_latency;
          Alcotest.test_case "adds requested sites" `Quick test_placement_adds_requested_sites;
          Alcotest.test_case "MIP small instance" `Quick test_placement_mip_small;
          Alcotest.test_case "anti-affinity honoured" `Quick
            test_placement_anti_affinity_honoured;
          Alcotest.test_case "cloud caps honoured" `Quick test_placement_cloud_caps_honoured;
          Alcotest.test_case "no_constraints bit-identical" `Quick
            test_placement_no_constraints_bit_identical;
        ] );
      ( "deployment_edits",
        [
          Alcotest.test_case "recompile switches view" `Quick
            test_recompile_deployment_switches_view;
          Alcotest.test_case "recompile rejects different shape" `Quick
            test_recompile_deployment_rejects_different_shape;
          Alcotest.test_case "without_deployments validates ids" `Quick
            test_without_deployments_validates_ids;
        ] );
      ( "multi_endpoint",
        [
          Alcotest.test_case "shares normalized" `Quick test_multi_endpoint_shares_normalized;
          Alcotest.test_case "validation" `Quick test_multi_endpoint_validation;
          Alcotest.test_case "greedy routes" `Quick test_multi_endpoint_greedy;
          Alcotest.test_case "DP routes" `Quick test_multi_endpoint_dp;
          Alcotest.test_case "LP routes" `Quick test_multi_endpoint_lp;
          Alcotest.test_case "LP dominates DP" `Quick test_multi_endpoint_lp_dominates_dp;
          Alcotest.test_case "decompose" `Quick test_multi_endpoint_decompose;
        ] );
      ( "edge_cases",
        [
          Alcotest.test_case "LP budget requires throughput objective" `Quick
            test_lp_cloud_budget_requires_throughput;
          Alcotest.test_case "Eval LP fallback over capacity" `Quick
            test_eval_lp_fallback_over_capacity;
          Alcotest.test_case "MIP node limit" `Quick test_mip_node_limit;
          Alcotest.test_case "workload invalid params" `Quick test_workload_invalid_params;
          Alcotest.test_case "placement zero sites" `Quick test_placement_zero_sites_noop;
          Alcotest.test_case "DP unroutable chain" `Quick test_dp_unroutable_chain;
          Alcotest.test_case "spec missing file" `Quick test_spec_missing_file;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_schemes_always_valid;
          QCheck_alcotest.to_alcotest prop_lp_dominates_dp;
          QCheck_alcotest.to_alcotest prop_routing_packed_roundtrip;
        ] );
    ]
