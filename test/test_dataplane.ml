module Packet = Sb_dataplane.Packet
module Flow_table = Sb_dataplane.Flow_table
module Balancer = Sb_dataplane.Balancer
module Fabric = Sb_dataplane.Fabric
module Ovs = Sb_dataplane.Ovs_model
module Dpdk = Sb_dataplane.Dpdk_model

(* ----------------------------- packets ----------------------------- *)

let tuple1 =
  { Packet.src_ip = 1; dst_ip = 2; proto = 6; src_port = 1000; dst_port = 80 }

let test_reverse_tuple () =
  let r = Packet.reverse_tuple tuple1 in
  Alcotest.(check int) "src swapped" 2 r.Packet.src_ip;
  Alcotest.(check int) "ports swapped" 80 r.Packet.src_port;
  Alcotest.(check bool) "involution" true (Packet.reverse_tuple r = tuple1)

let test_canonical () =
  let a = Packet.canonical tuple1 in
  let b = Packet.canonical (Packet.reverse_tuple tuple1) in
  Alcotest.(check bool) "canonical orientation-independent" true (a = b)

let test_forward_packet () =
  let p = Packet.forward ~chain_label:3 ~egress_label:7 tuple1 in
  Alcotest.(check int) "stage 0" 0 p.Packet.stage;
  Alcotest.(check bool) "forward" true (p.Packet.direction = Packet.Forward);
  let r = Packet.reverse_of p ~last_stage:4 in
  Alcotest.(check int) "reverse stage" 4 r.Packet.stage;
  Alcotest.(check bool) "reverse dir" true (r.Packet.direction = Packet.Reverse)

(* ---------------------------- flow table --------------------------- *)

let key stage flow = { Flow_table.chain_label = 1; egress_label = 2; stage; flow }

let test_flow_table_roundtrip () =
  let t = Flow_table.create () in
  Flow_table.insert t (key 0 tuple1) { Flow_table.next = "a"; prev = "b" };
  (match Flow_table.find t (key 0 tuple1) with
  | Some e ->
    Alcotest.(check string) "next" "a" e.Flow_table.next;
    Alcotest.(check string) "prev" "b" e.Flow_table.prev
  | None -> Alcotest.fail "entry missing");
  Alcotest.(check bool) "different stage misses" true (Flow_table.find t (key 1 tuple1) = None)

let test_flow_table_remove_flow () =
  let t = Flow_table.create () in
  let other = { tuple1 with Packet.src_ip = 99 } in
  Flow_table.insert t (key 0 tuple1) { Flow_table.next = 1; prev = 2 };
  Flow_table.insert t (key 1 tuple1) { Flow_table.next = 3; prev = 4 };
  Flow_table.insert t (key 0 other) { Flow_table.next = 5; prev = 6 };
  Flow_table.remove_flow t tuple1;
  Alcotest.(check int) "only other connection survives" 1 (Flow_table.size t);
  Alcotest.(check bool) "other intact" true (Flow_table.find t (key 0 other) <> None)

let test_flow_table_overwrite () =
  let t = Flow_table.create () in
  Flow_table.insert t (key 0 tuple1) { Flow_table.next = 1; prev = 1 };
  Flow_table.insert t (key 0 tuple1) { Flow_table.next = 2; prev = 2 };
  Alcotest.(check int) "single entry" 1 (Flow_table.size t)

(* ----------------------------- balancer ---------------------------- *)

let test_pick_respects_weights () =
  let rng = Sb_util.Rng.create 3 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 30_000 do
    let hop = Balancer.pick rng [ ("a", 1.); ("b", 3.) ] in
    Hashtbl.replace counts hop (1 + try Hashtbl.find counts hop with Not_found -> 0)
  done;
  let a = float_of_int (Hashtbl.find counts "a") in
  let b = float_of_int (Hashtbl.find counts "b") in
  Alcotest.(check bool) "3:1 ratio" true (b /. a > 2.6 && b /. a < 3.4)

let test_normalize () =
  let r = Balancer.normalize [ ("a", 2.); ("b", 2.); ("c", 0.); ("d", -1.) ] in
  Alcotest.(check int) "drops non-positive" 2 (List.length r);
  List.iter (fun (_, w) -> Alcotest.(check (float 1e-9)) "half" 0.5 w) r

let test_compose_hierarchical () =
  (* Site fractions 0.75 / 0.25; site 0 has two instances 1:1, site 1 one. *)
  let per_site = function
    | 0 -> [ ("i0", 1.); ("i1", 1.) ]
    | 1 -> [ ("i2", 5.) ]
    | _ -> []
  in
  let rule = Balancer.compose ~site_fraction:[ (0, 0.75); (1, 0.25) ] ~per_site in
  let w hop = List.assoc hop rule in
  Alcotest.(check (float 1e-9)) "i0 = 0.75 * 0.5" 0.375 (w "i0");
  Alcotest.(check (float 1e-9)) "i1" 0.375 (w "i1");
  Alcotest.(check (float 1e-9)) "i2 = 0.25 (normalized within site)" 0.25 (w "i2")

let test_forwarder_weight () =
  Alcotest.(check (float 1e-9)) "sum" 6. (Balancer.forwarder_weight ~instance_weights:[ 1.; 2.; 3. ])

(* qcheck: random two-level weight hierarchies (site fractions x in-site
   instance weights, zeros included). The empirical pick distribution
   converges to the composed weights; zero-weight targets are never
   picked, and a lone positive target gets everything. *)
let prop_balancer_hierarchical_convergence =
  QCheck.Test.make ~name:"hierarchical balancer converges to weights" ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sb_util.Rng.create seed in
      let weight () = [| 0.; 0.; 0.25; 0.5; 1.; 2. |].(Sb_util.Rng.int rng 6) in
      let nsites = 1 + Sb_util.Rng.int rng 4 in
      let site_fraction = List.init nsites (fun s -> (s, weight ())) in
      let in_site =
        Array.init nsites (fun s ->
            List.init (1 + Sb_util.Rng.int rng 3) (fun i -> ((s, i), weight ())))
      in
      let rule = Balancer.compose ~site_fraction ~per_site:(fun s -> in_site.(s)) in
      let total = List.fold_left (fun a (_, w) -> a +. w) 0. rule in
      QCheck.assume (total > 0.);
      let n = 20_000 in
      let counts = Hashtbl.create 16 in
      for _ = 1 to n do
        let h = Balancer.pick rng rule in
        Hashtbl.replace counts h (1 + try Hashtbl.find counts h with Not_found -> 0)
      done;
      List.for_all
        (fun (h, w) ->
          let freq =
            float_of_int (try Hashtbl.find counts h with Not_found -> 0)
            /. float_of_int n
          in
          if w <= 0. then freq = 0.
          else Float.abs (freq -. (w /. total)) <= 0.02)
        rule)

(* ------------------------------ fabric ----------------------------- *)

(* Chain with two VNFs (G at site A with 2 instances, O at site B with 2),
   ingress edge at A, egress edge at B. *)
type testbed = {
  fab : Fabric.t;
  ein : int;
  eout : int;
  g1 : int;
  g2 : int;
  o1 : int;
  o2 : int;
  fa : int;
  fb : int;
}

let chain_label = 1
let egress_label = 3

let build_testbed ?(seed = 7) () =
  let fab = Fabric.create ~seed () in
  let sa = Fabric.add_site fab "A" in
  let sb = Fabric.add_site fab "B" in
  let fa = Fabric.add_forwarder fab ~site:sa in
  let fb = Fabric.add_forwarder fab ~site:sb in
  let ein = Fabric.add_edge fab ~site:sa ~forwarder:fa in
  let eout = Fabric.add_edge fab ~site:sb ~forwarder:fb in
  let g1 = Fabric.add_vnf_instance fab ~vnf:100 ~site:sa ~forwarder:fa () in
  let g2 = Fabric.add_vnf_instance fab ~vnf:100 ~site:sa ~forwarder:fa () in
  let o1 = Fabric.add_vnf_instance fab ~vnf:200 ~site:sb ~forwarder:fb () in
  let o2 = Fabric.add_vnf_instance fab ~vnf:200 ~site:sb ~forwarder:fb () in
  Fabric.install_rule fab ~forwarder:fa ~chain_label ~egress_label ~stage:0
    [ (Fabric.Vnf_instance g1, 0.5); (Fabric.Vnf_instance g2, 0.5) ];
  Fabric.install_rule fab ~forwarder:fa ~chain_label ~egress_label ~stage:1
    [ (Fabric.Forwarder fb, 1.0) ];
  Fabric.install_rule fab ~forwarder:fb ~chain_label ~egress_label ~stage:1
    [ (Fabric.Vnf_instance o1, 0.5); (Fabric.Vnf_instance o2, 0.5) ];
  Fabric.install_rule fab ~forwarder:fb ~chain_label ~egress_label ~stage:2
    [ (Fabric.Edge eout, 1.0) ];
  { fab; ein; eout; g1; g2; o1; o2; fa; fb }

let send_ok tb tuple =
  match Fabric.send_forward tb.fab ~ingress:tb.ein ~chain_label ~egress_label tuple with
  | Ok trace -> trace
  | Error e -> Alcotest.failf "forward failed: %a" Fabric.pp_error e

let send_rev_ok tb tuple =
  match Fabric.send_reverse tb.fab ~egress:tb.eout ~chain_label ~egress_label tuple with
  | Ok trace -> trace
  | Error e -> Alcotest.failf "reverse failed: %a" Fabric.pp_error e

let test_conformity () =
  let tb = build_testbed () in
  let rng = Sb_util.Rng.create 1 in
  for _ = 1 to 50 do
    let trace = send_ok tb (Packet.random_tuple rng) in
    Alcotest.(check (list int)) "VNF order is the chain order" [ 100; 200 ]
      (Fabric.vnfs_in_trace tb.fab trace)
  done

let test_trace_endpoints () =
  let tb = build_testbed () in
  let trace = send_ok tb tuple1 in
  (match trace with
  | Fabric.Edge e :: _ -> Alcotest.(check int) "starts at ingress" tb.ein e
  | _ -> Alcotest.fail "trace must start at an edge");
  match List.rev trace with
  | Fabric.Edge e :: _ -> Alcotest.(check int) "ends at egress" tb.eout e
  | _ -> Alcotest.fail "trace must end at an edge"

let test_flow_affinity () =
  let tb = build_testbed () in
  let rng = Sb_util.Rng.create 2 in
  for _ = 1 to 30 do
    let tuple = Packet.random_tuple rng in
    let first = Fabric.instances_in_trace (send_ok tb tuple) in
    for _ = 1 to 5 do
      let again = Fabric.instances_in_trace (send_ok tb tuple) in
      Alcotest.(check (list int)) "same instances for same connection" first again
    done
  done

let test_symmetric_return () =
  let tb = build_testbed () in
  let rng = Sb_util.Rng.create 3 in
  for _ = 1 to 30 do
    let tuple = Packet.random_tuple rng in
    let fwd = Fabric.instances_in_trace (send_ok tb tuple) in
    let rev = Fabric.instances_in_trace (send_rev_ok tb tuple) in
    Alcotest.(check (list int)) "reverse visits same instances reversed"
      (List.rev fwd) rev
  done

let test_reverse_without_forward_fails () =
  let tb = build_testbed () in
  match Fabric.send_reverse tb.fab ~egress:tb.eout ~chain_label ~egress_label tuple1 with
  | Error (Fabric.No_reverse_entry _) -> ()
  | Ok _ -> Alcotest.fail "reverse should fail without forward state"
  | Error e -> Alcotest.failf "unexpected error: %a" Fabric.pp_error e

let test_load_balancing_spreads () =
  let tb = build_testbed () in
  let rng = Sb_util.Rng.create 4 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 400 do
    let trace = send_ok tb (Packet.random_tuple rng) in
    List.iter
      (fun i -> Hashtbl.replace counts i (1 + try Hashtbl.find counts i with Not_found -> 0))
      (Fabric.instances_in_trace trace)
  done;
  List.iter
    (fun i ->
      let n = try Hashtbl.find counts i with Not_found -> 0 in
      Alcotest.(check bool) (Printf.sprintf "instance %d used" i) true (n > 100))
    [ tb.g1; tb.g2; tb.o1; tb.o2 ]

let test_weight_skew_respected () =
  let tb = build_testbed () in
  (* Reweight G's instances 9:1; existing flows unaffected, new flows skewed. *)
  Fabric.install_rule tb.fab ~forwarder:tb.fa ~chain_label ~egress_label ~stage:0
    [ (Fabric.Vnf_instance tb.g1, 0.9); (Fabric.Vnf_instance tb.g2, 0.1) ];
  let rng = Sb_util.Rng.create 5 in
  let g1_count = ref 0 and g2_count = ref 0 in
  for _ = 1 to 1000 do
    let trace = send_ok tb (Packet.random_tuple rng) in
    List.iter
      (fun i ->
        if i = tb.g1 then incr g1_count else if i = tb.g2 then incr g2_count)
      (Fabric.instances_in_trace trace)
  done;
  let ratio = float_of_int !g1_count /. float_of_int (max 1 !g2_count) in
  Alcotest.(check bool) "9:1 within tolerance" true (ratio > 6. && ratio < 14.)

let test_affinity_survives_weight_change () =
  let tb = build_testbed () in
  let rng = Sb_util.Rng.create 6 in
  let tuples = List.init 20 (fun _ -> Packet.random_tuple rng) in
  let before = List.map (fun t -> Fabric.instances_in_trace (send_ok tb t)) tuples in
  (* Shift all new traffic to g2 only. *)
  Fabric.install_rule tb.fab ~forwarder:tb.fa ~chain_label ~egress_label ~stage:0
    [ (Fabric.Vnf_instance tb.g2, 1.0) ];
  let after = List.map (fun t -> Fabric.instances_in_trace (send_ok tb t)) tuples in
  List.iter2
    (fun b a -> Alcotest.(check (list int)) "existing connections keep their path" b a)
    before after;
  (* A new connection after the change must use g2. *)
  let fresh = Packet.random_tuple rng in
  let trace = Fabric.instances_in_trace (send_ok tb fresh) in
  Alcotest.(check bool) "new connection follows new rule" true (List.mem tb.g2 trace);
  Alcotest.(check bool) "new connection avoids g1" false (List.mem tb.g1 trace)

let test_symmetric_return_after_route_change () =
  let tb = build_testbed () in
  let rng = Sb_util.Rng.create 7 in
  let tuple = Packet.random_tuple rng in
  let fwd = Fabric.instances_in_trace (send_ok tb tuple) in
  Fabric.install_rule tb.fab ~forwarder:tb.fa ~chain_label ~egress_label ~stage:0
    [ (Fabric.Vnf_instance tb.g2, 1.0) ];
  let rev = Fabric.instances_in_trace (send_rev_ok tb tuple) in
  Alcotest.(check (list int)) "reverse still symmetric after rule change"
    (List.rev fwd) rev

let test_flow_table_sizes () =
  let tb = build_testbed () in
  let rng = Sb_util.Rng.create 8 in
  for _ = 1 to 10 do
    ignore (send_ok tb (Packet.random_tuple rng))
  done;
  (* Per connection: fa stores stage 0 (receiver+sender merged) and stage 1;
     fb stores stage 1 and stage 2. *)
  Alcotest.(check int) "fa entries" 20 (Fabric.flow_table_size tb.fab ~forwarder:tb.fa);
  Alcotest.(check int) "fb entries" 20 (Fabric.flow_table_size tb.fab ~forwarder:tb.fb)

let test_end_flow_clears_state () =
  let tb = build_testbed () in
  ignore (send_ok tb tuple1);
  Fabric.end_flow tb.fab tuple1;
  Alcotest.(check int) "fa cleared" 0 (Fabric.flow_table_size tb.fab ~forwarder:tb.fa);
  match Fabric.send_reverse tb.fab ~egress:tb.eout ~chain_label ~egress_label tuple1 with
  | Error (Fabric.No_reverse_entry _) -> ()
  | _ -> Alcotest.fail "reverse after teardown should fail"

let test_no_rule_error () =
  let tb = build_testbed () in
  match Fabric.send_forward tb.fab ~ingress:tb.ein ~chain_label:99 ~egress_label tuple1 with
  | Error (Fabric.No_rule _) -> ()
  | _ -> Alcotest.fail "unknown chain should have no rule"

let test_rule_loop_detected () =
  let fab = Fabric.create () in
  let s = Fabric.add_site fab "A" in
  let f1 = Fabric.add_forwarder fab ~site:s in
  let f2 = Fabric.add_forwarder fab ~site:s in
  let e = Fabric.add_edge fab ~site:s ~forwarder:f1 in
  Fabric.install_rule fab ~forwarder:f1 ~chain_label:1 ~egress_label:1 ~stage:0
    [ (Fabric.Forwarder f2, 1.) ];
  Fabric.install_rule fab ~forwarder:f2 ~chain_label:1 ~egress_label:1 ~stage:0
    [ (Fabric.Forwarder f1, 1.) ];
  match Fabric.send_forward fab ~ingress:e ~chain_label:1 ~egress_label:1 tuple1 with
  | Error Fabric.Ttl_exceeded -> ()
  | _ -> Alcotest.fail "expected TTL loop detection"

let test_published_weight () =
  let tb = build_testbed () in
  Alcotest.(check (float 1e-9)) "fa publishes G weight 2" 2.
    (Fabric.forwarder_published_weight tb.fab tb.fa 100);
  Fabric.set_instance_weight tb.fab tb.g1 3.;
  Alcotest.(check (float 1e-9)) "updated weight" 4.
    (Fabric.forwarder_published_weight tb.fab tb.fa 100);
  Alcotest.(check (float 1e-9)) "other vnf zero" 0.
    (Fabric.forwarder_published_weight tb.fab tb.fa 200)

let test_same_site_chain () =
  (* Whole chain on one site, one forwarder: ingress, two VNFs, egress. *)
  let fab = Fabric.create () in
  let s = Fabric.add_site fab "A" in
  let f = Fabric.add_forwarder fab ~site:s in
  let ein = Fabric.add_edge fab ~site:s ~forwarder:f in
  let eout = Fabric.add_edge fab ~site:s ~forwarder:f in
  let v1 = Fabric.add_vnf_instance fab ~vnf:1 ~site:s ~forwarder:f () in
  let v2 = Fabric.add_vnf_instance fab ~vnf:2 ~site:s ~forwarder:f () in
  Fabric.install_rule fab ~forwarder:f ~chain_label:1 ~egress_label:1 ~stage:0
    [ (Fabric.Vnf_instance v1, 1.) ];
  Fabric.install_rule fab ~forwarder:f ~chain_label:1 ~egress_label:1 ~stage:1
    [ (Fabric.Vnf_instance v2, 1.) ];
  Fabric.install_rule fab ~forwarder:f ~chain_label:1 ~egress_label:1 ~stage:2
    [ (Fabric.Edge eout, 1.) ];
  (match Fabric.send_forward fab ~ingress:ein ~chain_label:1 ~egress_label:1 tuple1 with
  | Ok trace ->
    Alcotest.(check (list int)) "conformity" [ 1; 2 ] (Fabric.vnfs_in_trace fab trace)
  | Error e -> Alcotest.failf "forward failed: %a" Fabric.pp_error e);
  match Fabric.send_reverse fab ~egress:eout ~chain_label:1 ~egress_label:1 tuple1 with
  | Ok trace ->
    Alcotest.(check (list int)) "reverse conformity" [ 2; 1 ] (Fabric.vnfs_in_trace fab trace)
  | Error e -> Alcotest.failf "reverse failed: %a" Fabric.pp_error e


let test_instance_failure_breaks_pinned_flows () =
  let tb = build_testbed () in
  let rng = Sb_util.Rng.create 31 in
  (* Establish connections until some are pinned to g1. *)
  let tuples = List.init 30 (fun _ -> Packet.random_tuple rng) in
  let pinned_to_g1 =
    List.filter
      (fun tuple -> List.mem tb.g1 (Fabric.instances_in_trace (send_ok tb tuple)))
      tuples
  in
  Alcotest.(check bool) "some connections pinned to g1" true (pinned_to_g1 <> []);
  Fabric.fail_instance tb.fab tb.g1;
  Alcotest.(check bool) "marked dead" false (Fabric.instance_alive tb.fab tb.g1);
  (* Pinned connections now fail (the paper's affinity-violation caveat)... *)
  List.iter
    (fun tuple ->
      match Fabric.send_forward tb.fab ~ingress:tb.ein ~chain_label ~egress_label tuple with
      | Error (Fabric.Instance_down i) -> Alcotest.(check int) "down instance" tb.g1 i
      | Ok _ -> Alcotest.fail "pinned connection should hit the dead instance"
      | Error e -> Alcotest.failf "unexpected error: %a" Fabric.pp_error e)
    pinned_to_g1;
  (* ...until the controller updates the rule; then NEW connections avoid
     g1, and torn-down old connections recover on re-establishment. *)
  Fabric.install_rule tb.fab ~forwarder:tb.fa ~chain_label ~egress_label ~stage:0
    [ (Fabric.Vnf_instance tb.g2, 1.0) ];
  List.iter (fun tuple -> Fabric.end_flow tb.fab tuple) pinned_to_g1;
  List.iter
    (fun tuple ->
      let trace = send_ok tb tuple in
      Alcotest.(check bool) "re-established on g2" true
        (List.mem tb.g2 (Fabric.instances_in_trace trace)))
    pinned_to_g1


let test_transfer_flows_preserves_affinity () =
  let tb = build_testbed () in
  let rng = Sb_util.Rng.create 41 in
  let tuples = List.init 20 (fun _ -> Packet.random_tuple rng) in
  List.iter (fun t -> ignore (send_ok tb t)) tuples;
  let pinned_to_g1 =
    List.filter (fun t -> List.mem tb.g1 (Fabric.instances_in_trace (send_ok tb t))) tuples
  in
  Alcotest.(check bool) "have connections on g1" true (pinned_to_g1 <> []);
  (* Migrate g1's state to g2 (OpenNF-style), then kill g1. *)
  let rewritten = Fabric.transfer_flows tb.fab ~from_instance:tb.g1 ~to_instance:tb.g2 in
  Alcotest.(check bool) "entries rewritten" true (rewritten > 0);
  Fabric.fail_instance tb.fab tb.g1;
  List.iter
    (fun tuple ->
      (* Forward traffic keeps flowing, now through g2, same everywhere else. *)
      let trace = send_ok tb tuple in
      let insts = Fabric.instances_in_trace trace in
      Alcotest.(check bool) "uses g2" true (List.mem tb.g2 insts);
      Alcotest.(check bool) "avoids dead g1" false (List.mem tb.g1 insts);
      (* Symmetric return also survives the migration. *)
      let rev = Fabric.instances_in_trace (send_rev_ok tb tuple) in
      Alcotest.(check (list int)) "reverse symmetric post-transfer" (List.rev insts) rev)
    pinned_to_g1

let test_transfer_flows_rejects_cross_vnf () =
  let tb = build_testbed () in
  Alcotest.check_raises "different VNF types"
    (Invalid_argument "Fabric.transfer_flows: instances run different VNFs") (fun () ->
      ignore (Fabric.transfer_flows tb.fab ~from_instance:tb.g1 ~to_instance:tb.o1))

let test_transfer_flows_other_connections_untouched () =
  let tb = build_testbed () in
  let rng = Sb_util.Rng.create 43 in
  let tuples = List.init 20 (fun _ -> Packet.random_tuple rng) in
  List.iter (fun t -> ignore (send_ok tb t)) tuples;
  let on_g2 =
    List.filter (fun t -> List.mem tb.g2 (Fabric.instances_in_trace (send_ok tb t))) tuples
  in
  let before = List.map (fun t -> Fabric.instances_in_trace (send_ok tb t)) on_g2 in
  ignore (Fabric.transfer_flows tb.fab ~from_instance:tb.g1 ~to_instance:tb.g2);
  let after = List.map (fun t -> Fabric.instances_in_trace (send_ok tb t)) on_g2 in
  List.iter2
    (fun b a -> Alcotest.(check (list int)) "g2 connections unchanged" b a)
    before after


let test_transfer_flows_across_forwarders () =
  (* Same VNF on two different forwarders at one site: migration must also
     move the onward/return entries to the new instance's forwarder. *)
  let fab = Fabric.create ~seed:11 () in
  let sa = Fabric.add_site fab "A" in
  let fa1 = Fabric.add_forwarder fab ~site:sa in
  let fa2 = Fabric.add_forwarder fab ~site:sa in
  let ein = Fabric.add_edge fab ~site:sa ~forwarder:fa1 in
  let eout = Fabric.add_edge fab ~site:sa ~forwarder:fa1 in
  let g1 = Fabric.add_vnf_instance fab ~vnf:5 ~site:sa ~forwarder:fa1 () in
  let g2 = Fabric.add_vnf_instance fab ~vnf:5 ~site:sa ~forwarder:fa2 () in
  Fabric.install_rule fab ~forwarder:fa1 ~chain_label:1 ~egress_label:1 ~stage:0
    [ (Fabric.Vnf_instance g1, 1.0) ];
  Fabric.install_rule fab ~forwarder:fa1 ~chain_label:1 ~egress_label:1 ~stage:1
    [ (Fabric.Edge eout, 1.0) ];
  Fabric.install_rule fab ~forwarder:fa2 ~chain_label:1 ~egress_label:1 ~stage:1
    [ (Fabric.Edge eout, 1.0) ];
  let rng = Sb_util.Rng.create 44 in
  let tuples = List.init 5 (fun _ -> Packet.random_tuple rng) in
  List.iter
    (fun t ->
      match Fabric.send_forward fab ~ingress:ein ~chain_label:1 ~egress_label:1 t with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "establish: %a" Fabric.pp_error e)
    tuples;
  ignore (Fabric.transfer_flows fab ~from_instance:g1 ~to_instance:g2);
  Fabric.fail_instance fab g1;
  List.iter
    (fun t ->
      match Fabric.send_forward fab ~ingress:ein ~chain_label:1 ~egress_label:1 t with
      | Ok trace ->
        Alcotest.(check (list int)) "flows via g2 on the other forwarder" [ g2 ]
          (Fabric.instances_in_trace trace)
      | Error e -> Alcotest.failf "post-transfer: %a" Fabric.pp_error e)
    tuples


(* --------------- forwarder failure: Local vs Replicated ------------ *)

(* One site, two forwarders. The edge and instance g1 hang off F1; g2 off
   F2. After F1 dies, the edge and g1 are reattached to F2. With local
   flow tables the connection state died with F1; with the DHT flow store
   (Section 5.3) every connection keeps its instances. *)
let forwarder_failure_scenario ~flow_store ~seed =
  let fab = Fabric.create ~seed ~flow_store () in
  let sa = Fabric.add_site fab "A" in
  let f1 = Fabric.add_forwarder fab ~site:sa in
  let f2 = Fabric.add_forwarder fab ~site:sa in
  let ein = Fabric.add_edge fab ~site:sa ~forwarder:f1 in
  let eout = Fabric.add_edge fab ~site:sa ~forwarder:f1 in
  let g1 = Fabric.add_vnf_instance fab ~vnf:5 ~site:sa ~forwarder:f1 () in
  let g2 = Fabric.add_vnf_instance fab ~vnf:5 ~site:sa ~forwarder:f2 () in
  List.iter
    (fun fwd ->
      Fabric.install_rule fab ~forwarder:fwd ~chain_label:1 ~egress_label:1 ~stage:0
        [ (Fabric.Vnf_instance g1, 0.5); (Fabric.Vnf_instance g2, 0.5) ];
      Fabric.install_rule fab ~forwarder:fwd ~chain_label:1 ~egress_label:1 ~stage:1
        [ (Fabric.Edge eout, 1.0) ])
    [ f1; f2 ];
  let rng = Sb_util.Rng.create (seed + 1) in
  let tuples = List.init 30 (fun _ -> Packet.random_tuple rng) in
  let establish tuple =
    match Fabric.send_forward fab ~ingress:ein ~chain_label:1 ~egress_label:1 tuple with
    | Ok trace -> Fabric.instances_in_trace trace
    | Error e -> Alcotest.failf "establish: %a" Fabric.pp_error e
  in
  let before = List.map establish tuples in
  Fabric.fail_forwarder fab f1;
  Fabric.reattach_edge fab ein ~forwarder:f2;
  Fabric.reattach_edge fab eout ~forwarder:f2;
  Fabric.reattach_instance fab g1 ~forwarder:f2;
  let after = List.map establish tuples in
  (fab, ein, eout, tuples, before, after)

let test_forwarder_failure_local_loses_affinity () =
  let _, _, _, _, before, after =
    forwarder_failure_scenario ~flow_store:Fabric.Local ~seed:51
  in
  (* The flow state died with F1: the rebalanced choices differ for at
     least one connection (deterministic under the fixed seed). *)
  Alcotest.(check bool) "some connection changed instances" true
    (List.exists2 (fun b a -> b <> a) before after)

let test_forwarder_failure_replicated_keeps_affinity () =
  let fab, _, eout, tuples, before, after =
    forwarder_failure_scenario ~flow_store:(Fabric.Replicated 2) ~seed:51
  in
  List.iter2
    (fun b a -> Alcotest.(check (list int)) "affinity survives forwarder death" b a)
    before after;
  (* Symmetric return also survives: reverse packets follow the stored
     prev hops out of the replicated state. *)
  List.iter2
    (fun tuple fwd_insts ->
      match Fabric.send_reverse fab ~egress:eout ~chain_label:1 ~egress_label:1 tuple with
      | Ok trace ->
        Alcotest.(check (list int)) "symmetric return survives"
          (List.rev fwd_insts)
          (Fabric.instances_in_trace trace)
      | Error e -> Alcotest.failf "reverse after failover: %a" Fabric.pp_error e)
    tuples before

let test_forwarder_down_error () =
  let fab = Fabric.create () in
  let sa = Fabric.add_site fab "A" in
  let f1 = Fabric.add_forwarder fab ~site:sa in
  let ein = Fabric.add_edge fab ~site:sa ~forwarder:f1 in
  Fabric.fail_forwarder fab f1;
  Alcotest.(check bool) "marked dead" false (Fabric.forwarder_alive fab f1);
  match Fabric.send_forward fab ~ingress:ein ~chain_label:1 ~egress_label:1 tuple1 with
  | Error (Fabric.Forwarder_down f) -> Alcotest.(check int) "f1 reported" f1 f
  | _ -> Alcotest.fail "expected Forwarder_down"

let test_replicated_mode_basic_safety () =
  (* The standard 2-site testbed invariants hold under the DHT store too. *)
  let fab = Fabric.create ~seed:7 ~flow_store:(Fabric.Replicated 2) () in
  let sa = Fabric.add_site fab "A" in
  let sb = Fabric.add_site fab "B" in
  let fa = Fabric.add_forwarder fab ~site:sa in
  let fb = Fabric.add_forwarder fab ~site:sb in
  let ein = Fabric.add_edge fab ~site:sa ~forwarder:fa in
  let eout = Fabric.add_edge fab ~site:sb ~forwarder:fb in
  let g1 = Fabric.add_vnf_instance fab ~vnf:100 ~site:sa ~forwarder:fa () in
  let o1 = Fabric.add_vnf_instance fab ~vnf:200 ~site:sb ~forwarder:fb () in
  Fabric.install_rule fab ~forwarder:fa ~chain_label:1 ~egress_label:3 ~stage:0
    [ (Fabric.Vnf_instance g1, 1.) ];
  Fabric.install_rule fab ~forwarder:fa ~chain_label:1 ~egress_label:3 ~stage:1
    [ (Fabric.Forwarder fb, 1.) ];
  Fabric.install_rule fab ~forwarder:fb ~chain_label:1 ~egress_label:3 ~stage:1
    [ (Fabric.Vnf_instance o1, 1.) ];
  Fabric.install_rule fab ~forwarder:fb ~chain_label:1 ~egress_label:3 ~stage:2
    [ (Fabric.Edge eout, 1.) ];
  let rng = Sb_util.Rng.create 9 in
  for _ = 1 to 10 do
    let tuple = Packet.random_tuple rng in
    (match Fabric.send_forward fab ~ingress:ein ~chain_label:1 ~egress_label:3 tuple with
    | Ok trace ->
      Alcotest.(check (list int)) "conformity" [ 100; 200 ] (Fabric.vnfs_in_trace fab trace)
    | Error e -> Alcotest.failf "forward: %a" Fabric.pp_error e);
    match Fabric.send_reverse fab ~egress:eout ~chain_label:1 ~egress_label:3 tuple with
    | Ok trace ->
      Alcotest.(check (list int)) "reverse conformity" [ 200; 100 ]
        (Fabric.vnfs_in_trace fab trace)
    | Error e -> Alcotest.failf "reverse: %a" Fabric.pp_error e
  done

(* qcheck: random fabrics with a random chain spec; conformity, affinity and
   symmetric return hold for every connection. *)
let prop_safety_random_chains =
  QCheck.Test.make ~name:"safety on random chains" ~count:30
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sb_util.Rng.create seed in
      let fab = Fabric.create ~seed () in
      let nsites = 2 + Sb_util.Rng.int rng 3 in
      let sites = Array.init nsites (fun i -> Fabric.add_site fab (string_of_int i)) in
      let fwds = Array.map (fun s -> Fabric.add_forwarder fab ~site:s) sites in
      let chain_len = 1 + Sb_util.Rng.int rng 3 in
      (* VNF z lives at a random site with 1-3 instances. *)
      let vnf_sites = Array.init chain_len (fun _ -> Sb_util.Rng.int rng nsites) in
      let instances =
        Array.init chain_len (fun z ->
            let s = vnf_sites.(z) in
            Array.init
              (1 + Sb_util.Rng.int rng 3)
              (fun _ ->
                Fabric.add_vnf_instance fab ~vnf:(z + 10) ~site:sites.(s)
                  ~forwarder:fwds.(s) ()))
      in
      let in_site = Sb_util.Rng.int rng nsites in
      let out_site = Sb_util.Rng.int rng nsites in
      let ein = Fabric.add_edge fab ~site:sites.(in_site) ~forwarder:fwds.(in_site) in
      let eout = Fabric.add_edge fab ~site:sites.(out_site) ~forwarder:fwds.(out_site) in
      (* Install rules: stage z at the forwarder of element z (edge fwd for
         stage 0); remote next hops via forwarder; receiver-side at the
         destination forwarder. *)
      let fwd_of_element z = if z = 0 then fwds.(in_site) else fwds.(vnf_sites.(z - 1)) in
      for z = 0 to chain_len do
        let sender = fwd_of_element z in
        let dest_fwd, local_rule =
          if z = chain_len then
            ( fwds.(out_site),
              [ (Fabric.Edge eout, 1.) ] )
          else
            ( fwds.(vnf_sites.(z)),
              Array.to_list
                (Array.map (fun i -> (Fabric.Vnf_instance i, 1.)) instances.(z)) )
        in
        if sender = dest_fwd then
          Fabric.install_rule fab ~forwarder:sender ~chain_label:1 ~egress_label:2 ~stage:z
            local_rule
        else begin
          Fabric.install_rule fab ~forwarder:sender ~chain_label:1 ~egress_label:2 ~stage:z
            [ (Fabric.Forwarder dest_fwd, 1.) ];
          Fabric.install_rule fab ~forwarder:dest_fwd ~chain_label:1 ~egress_label:2 ~stage:z
            local_rule
        end
      done;
      let ok = ref true in
      for _ = 1 to 10 do
        let tuple = Packet.random_tuple rng in
        match Fabric.send_forward fab ~ingress:ein ~chain_label:1 ~egress_label:2 tuple with
        | Error _ -> ok := false
        | Ok trace ->
          let expected = List.init chain_len (fun z -> z + 10) in
          if Fabric.vnfs_in_trace fab trace <> expected then ok := false;
          let insts = Fabric.instances_in_trace trace in
          (match Fabric.send_forward fab ~ingress:ein ~chain_label:1 ~egress_label:2 tuple with
          | Ok t2 -> if Fabric.instances_in_trace t2 <> insts then ok := false
          | Error _ -> ok := false);
          (match Fabric.send_reverse fab ~egress:eout ~chain_label:1 ~egress_label:2 tuple with
          | Ok rt -> if Fabric.instances_in_trace rt <> List.rev insts then ok := false
          | Error _ -> ok := false)
      done;
      !ok)


(* qcheck: measurement-window semantics of the stage counters — the
   telemetry contract the sb_adapt exporters rely on. Every packet is
   counted exactly once per stage, per-site counters partition the
   aggregate, and [reset_counters] starts a fresh window without
   disturbing flow affinity. *)
let prop_counter_window_semantics =
  QCheck.Test.make ~name:"stage counter window semantics" ~count:30
    QCheck.(triple (int_range 0 1_000_000) (int_range 1 20) (int_range 1 20))
    (fun (seed, n1, n2) ->
      let tb = build_testbed ~seed () in
      let rng = Sb_util.Rng.create seed in
      let counters stage =
        Fabric.stage_counters tb.fab ~chain_label ~egress_label ~stage
      in
      let site_sum stage =
        let a, _ = Fabric.site_stage_counters tb.fab ~site:0 ~chain_label ~egress_label ~stage in
        let b, _ = Fabric.site_stage_counters tb.fab ~site:1 ~chain_label ~egress_label ~stage in
        a + b
      in
      let tracked = Packet.random_tuple rng in
      let affinity_before = Fabric.instances_in_trace (send_ok tb tracked) in
      for _ = 2 to n1 do
        ignore (send_ok tb (Packet.random_tuple rng))
      done;
      let ok = ref true in
      (* Window 1: every packet counted once at each of the 3 stages, and
         the per-site views partition the aggregate. *)
      for stage = 0 to 2 do
        let pkts, bytes = counters stage in
        if pkts <> n1 || bytes <= 0 then ok := false;
        if site_sum stage <> n1 then ok := false
      done;
      (* Reset: all stages read zero... *)
      Fabric.reset_counters tb.fab;
      for stage = 0 to 2 do
        if counters stage <> (0, 0) then ok := false
      done;
      (* ...and the new window counts only fresh traffic (the tracked
         connection re-sent among it). *)
      ignore (send_ok tb tracked);
      for _ = 2 to n2 do
        ignore (send_ok tb (Packet.random_tuple rng))
      done;
      for stage = 0 to 2 do
        let pkts, _ = counters stage in
        if pkts <> n2 then ok := false;
        if site_sum stage <> n2 then ok := false
      done;
      (* Resetting counters must not touch flow state. *)
      let affinity_after = Fabric.instances_in_trace (send_ok tb tracked) in
      if affinity_after <> affinity_before then ok := false;
      !ok)

(* ---------------------------- DHT table ---------------------------- *)

module Dht = Sb_dataplane.Dht_table

let dht_key i =
  { Flow_table.chain_label = i mod 5; egress_label = i mod 3; stage = i mod 4;
    flow = { Packet.src_ip = i; dst_ip = i * 7; proto = 6; src_port = i mod 1000; dst_port = 80 } }

let test_dht_put_get () =
  let d = Dht.create () in
  Dht.add_node d 1;
  Dht.add_node d 2;
  Dht.put d ~key:(dht_key 1) "a";
  Alcotest.(check (option string)) "roundtrip" (Some "a") (Dht.get d ~key:(dht_key 1));
  Alcotest.(check (option string)) "absent" None (Dht.get d ~key:(dht_key 2))

let test_dht_replication_count () =
  let d = Dht.create ~replication:2 () in
  List.iter (Dht.add_node d) [ 1; 2; 3; 4 ];
  for i = 0 to 99 do
    Dht.put d ~key:(dht_key i) i
  done;
  (* Each key on exactly 2 nodes: total replicas = 200. *)
  let total = List.fold_left (fun acc n -> acc + Dht.node_key_count d n) 0 (Dht.nodes d) in
  Alcotest.(check int) "2 replicas per key" 200 total;
  Alcotest.(check int) "100 distinct keys" 100 (Dht.size d)

let test_dht_survives_node_failure () =
  let d = Dht.create ~replication:2 () in
  List.iter (Dht.add_node d) [ 1; 2; 3; 4; 5 ];
  for i = 0 to 199 do
    Dht.put d ~key:(dht_key i) i
  done;
  (* Fail each node in turn (rejoining after): no key is ever lost. *)
  List.iter
    (fun victim ->
      Dht.remove_node d victim;
      for i = 0 to 199 do
        Alcotest.(check (option int))
          (Printf.sprintf "key %d after node %d failure" i victim)
          (Some i) (Dht.get d ~key:(dht_key i))
      done;
      Dht.add_node d victim)
    [ 1; 2; 3; 4; 5 ]

let test_dht_rereplicates_after_failure () =
  let d = Dht.create ~replication:2 () in
  List.iter (Dht.add_node d) [ 1; 2; 3 ];
  for i = 0 to 49 do
    Dht.put d ~key:(dht_key i) i
  done;
  Dht.remove_node d 2;
  (* Replication is restored on the survivors: two copies of everything. *)
  let total = List.fold_left (fun acc n -> acc + Dht.node_key_count d n) 0 (Dht.nodes d) in
  Alcotest.(check int) "re-replicated" 100 total

let test_dht_single_node_loses_on_failure () =
  let d = Dht.create ~replication:1 () in
  Dht.add_node d 1;
  Dht.add_node d 2;
  for i = 0 to 49 do
    Dht.put d ~key:(dht_key i) i
  done;
  Dht.remove_node d 1;
  (* With replication 1, node 1's share is gone. *)
  let surviving = Dht.node_key_count d 2 in
  Alcotest.(check bool) "some keys lost" true (surviving < 50);
  Alcotest.(check bool) "some keys survive" true (surviving > 0)

let test_dht_balance () =
  let d = Dht.create ~replication:1 ~virtual_nodes:128 () in
  List.iter (Dht.add_node d) [ 1; 2; 3; 4 ];
  for i = 0 to 3999 do
    Dht.put d ~key:(dht_key i) i
  done;
  List.iter
    (fun n ->
      let c = Dht.node_key_count d n in
      Alcotest.(check bool)
        (Printf.sprintf "node %d holds a fair share (%d)" n c)
        true
        (c > 500 && c < 2000))
    (Dht.nodes d)

let test_dht_minimal_disruption_on_join () =
  let d = Dht.create ~replication:1 ~virtual_nodes:64 () in
  List.iter (Dht.add_node d) [ 1; 2; 3; 4 ];
  let n = 2000 in
  for i = 0 to n - 1 do
    Dht.put d ~key:(dht_key i) i
  done;
  let owner_before = Array.init n (fun i -> Dht.owners d ~key:(dht_key i)) in
  Dht.add_node d 5;
  let moved = ref 0 in
  for i = 0 to n - 1 do
    if Dht.owners d ~key:(dht_key i) <> owner_before.(i) then incr moved
  done;
  (* Consistent hashing: about 1/5 of keys move, far from all. *)
  Alcotest.(check bool)
    (Printf.sprintf "only a fraction of keys move (%d/%d)" !moved n)
    true
    (float_of_int !moved /. float_of_int n < 0.45);
  (* And nothing is lost. *)
  for i = 0 to n - 1 do
    Alcotest.(check (option int)) "still present" (Some i) (Dht.get d ~key:(dht_key i))
  done

let test_dht_empty_ring () =
  let d = Dht.create () in
  Alcotest.(check (list int)) "no nodes" [] (Dht.nodes d);
  Alcotest.check_raises "put on empty ring"
    (Invalid_argument "Dht_table.put: no nodes in the ring") (fun () ->
      Dht.put d ~key:(dht_key 0) 0)

let test_dht_remove_key () =
  let d = Dht.create () in
  Dht.add_node d 1;
  Dht.put d ~key:(dht_key 0) 9;
  Dht.remove d ~key:(dht_key 0);
  Alcotest.(check (option int)) "removed everywhere" None (Dht.get d ~key:(dht_key 0))

let prop_dht_no_loss_under_churn =
  QCheck.Test.make ~name:"DHT keeps all keys under join/leave churn (k=2)" ~count:20
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sb_util.Rng.create seed in
      let d = Dht.create ~replication:2 () in
      List.iter (Dht.add_node d) [ 0; 1; 2 ];
      let next_id = ref 3 in
      for i = 0 to 99 do
        Dht.put d ~key:(dht_key i) i
      done;
      let ok = ref true in
      for _ = 1 to 10 do
        (* One membership change per step, keeping >= 2 nodes alive. *)
        (if Sb_util.Rng.bool rng || List.length (Dht.nodes d) <= 2 then begin
           Dht.add_node d !next_id;
           incr next_id
         end
         else begin
           let ns = Array.of_list (Dht.nodes d) in
           Dht.remove_node d (Sb_util.Rng.choice rng ns)
         end);
        for i = 0 to 99 do
          if Dht.get d ~key:(dht_key i) <> Some i then ok := false
        done
      done;
      !ok)


(* ------------------------- traffic generator ----------------------- *)

module Tgen = Sb_dataplane.Traffic_gen

let test_tgen_flow_population () =
  let rng = Sb_util.Rng.create 9 in
  let g = Tgen.create ~rng ~flows:32 () in
  Alcotest.(check int) "population size" 32 (Array.length (Tgen.flow_tuples g));
  (* Every emitted packet belongs to the population. *)
  let tuples = Array.to_list (Tgen.flow_tuples g) in
  List.iter
    (fun (t, size) ->
      Alcotest.(check bool) "known flow" true (List.mem t tuples);
      Alcotest.(check int) "64B fixed" 64 size)
    (Tgen.burst g 200)

let test_tgen_uniform_coverage () =
  let rng = Sb_util.Rng.create 10 in
  let g = Tgen.create ~rng ~flows:8 () in
  let seen = Hashtbl.create 8 in
  List.iter (fun (t, _) -> Hashtbl.replace seen t ()) (Tgen.burst g 400);
  Alcotest.(check int) "all flows hit" 8 (Hashtbl.length seen)

let test_tgen_zipf_skew () =
  let rng = Sb_util.Rng.create 11 in
  let g = Tgen.create ~rng ~flows:50 ~selection:(Tgen.Zipfian 1.2) () in
  let tuples = Tgen.flow_tuples g in
  let counts = Hashtbl.create 50 in
  List.iter
    (fun (t, _) -> Hashtbl.replace counts t (1 + try Hashtbl.find counts t with Not_found -> 0))
    (Tgen.burst g 5000);
  let top = try Hashtbl.find counts tuples.(0) with Not_found -> 0 in
  let mid = try Hashtbl.find counts tuples.(25) with Not_found -> 0 in
  Alcotest.(check bool) "rank 0 dominates rank 25" true (top > 3 * max 1 mid)

let test_tgen_imix_sizes () =
  let rng = Sb_util.Rng.create 12 in
  let g = Tgen.create ~rng ~flows:4 ~sizes:Tgen.Imix () in
  let sizes = List.map snd (Tgen.burst g 2400) in
  List.iter
    (fun s -> Alcotest.(check bool) "IMIX size" true (s = 64 || s = 570 || s = 1514))
    sizes;
  let count v = List.length (List.filter (( = ) v) sizes) in
  Alcotest.(check bool) "64B most common" true (count 64 > count 570 && count 570 > count 1514)

(* ------------------------- fabric telemetry ------------------------ *)

let test_counters_once_per_stage () =
  let tb = build_testbed () in
  let rng = Sb_util.Rng.create 13 in
  let g = Tgen.create ~rng ~flows:16 ~sizes:(Tgen.Fixed 500) () in
  let sent = 300 in
  List.iter
    (fun (tuple, size) ->
      match
        Fabric.send_forward tb.fab ~ingress:tb.ein ~chain_label ~egress_label ~size tuple
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "forward: %a" Fabric.pp_error e)
    (Tgen.burst g sent);
  for stage = 0 to 2 do
    let pkts, bytes = Fabric.stage_counters tb.fab ~chain_label ~egress_label ~stage in
    Alcotest.(check int) (Printf.sprintf "stage %d packets" stage) sent pkts;
    Alcotest.(check int) (Printf.sprintf "stage %d bytes" stage) (sent * 500) bytes
  done

let test_counters_isolated_per_chain () =
  let tb = build_testbed () in
  ignore (send_ok tb tuple1);
  let pkts, _ = Fabric.stage_counters tb.fab ~chain_label:99 ~egress_label ~stage:0 in
  Alcotest.(check int) "other chain unaffected" 0 pkts

let test_counters_reset () =
  let tb = build_testbed () in
  ignore (send_ok tb tuple1);
  Fabric.reset_counters tb.fab;
  let pkts, bytes = Fabric.stage_counters tb.fab ~chain_label ~egress_label ~stage:0 in
  Alcotest.(check int) "packets reset" 0 pkts;
  Alcotest.(check int) "bytes reset" 0 bytes

(* --------------------------- OVS model ----------------------------- *)

let test_ovs_label_overhead_band () =
  List.iter
    (fun flows ->
      let o = Ovs.overhead_vs_bridge Ovs.Labels ~flows in
      Alcotest.(check bool)
        (Printf.sprintf "label overhead at %d flows in 19-29%%" flows)
        true
        (o >= 0.18 && o <= 0.30))
    [ 1; 5; 10; 25; 50 ]

let test_ovs_affinity_overhead_band () =
  List.iter
    (fun flows ->
      let o = Ovs.overhead_vs_labels ~flows in
      Alcotest.(check bool)
        (Printf.sprintf "affinity overhead at %d flows in 33-44%%" flows)
        true
        (o >= 0.32 && o <= 0.45))
    [ 1; 5; 10; 25; 50 ]

let test_ovs_overhead_shrinks_with_flows () =
  Alcotest.(check bool) "labels overhead shrinks" true
    (Ovs.overhead_vs_bridge Ovs.Labels ~flows:50
    < Ovs.overhead_vs_bridge Ovs.Labels ~flows:1);
  Alcotest.(check bool) "affinity overhead shrinks" true
    (Ovs.overhead_vs_labels ~flows:50 < Ovs.overhead_vs_labels ~flows:1)

let test_ovs_throughput_declines_with_flows () =
  Alcotest.(check bool) "poor flow scalability" true
    (Ovs.throughput_kpps Ovs.Bridge ~flows:50 < Ovs.throughput_kpps Ovs.Bridge ~flows:1)

let test_ovs_config_ordering () =
  let flows = 10 in
  let b = Ovs.cycles_per_packet Ovs.Bridge ~flows in
  let l = Ovs.cycles_per_packet Ovs.Labels ~flows in
  let a = Ovs.cycles_per_packet Ovs.Labels_affinity ~flows in
  Alcotest.(check bool) "bridge < labels < affinity" true (b < l && l < a)


(* --------------------------- OVS pipeline -------------------------- *)

module Ovsp = Sb_dataplane.Ovs_pipeline

let test_pipeline_upcall_once_per_flow () =
  let p = Ovsp.create Ovs.Bridge in
  let st = Ovsp.run_stream p ~flows:10 ~packets:1000 in
  Alcotest.(check int) "one upcall per flow" 10 st.Ovsp.upcalls;
  Alcotest.(check int) "ten cache entries" 10 st.Ovsp.exact_entries

let test_pipeline_affinity_port_stable () =
  let p = Ovsp.create ~outputs:4 Ovs.Labels_affinity in
  let rng = Sb_util.Rng.create 2 in
  for _ = 1 to 20 do
    let flow = Packet.random_tuple rng in
    let first = (Ovsp.process p flow).Ovsp.port in
    for _ = 1 to 5 do
      Alcotest.(check int) "learned port stable" first (Ovsp.process p flow).Ovsp.port
    done
  done

let test_pipeline_affinity_spreads_ports () =
  let p = Ovsp.create ~outputs:2 Ovs.Labels_affinity in
  let rng = Sb_util.Rng.create 3 in
  let ports = Hashtbl.create 4 in
  for _ = 1 to 20 do
    let v = Ovsp.process p (Packet.random_tuple rng) in
    Hashtbl.replace ports v.Ovsp.port ()
  done;
  Alcotest.(check int) "both ports used" 2 (Hashtbl.length ports)

let test_pipeline_first_packet_costs_more () =
  let p = Ovsp.create Ovs.Labels_affinity in
  let flow = Packet.random_tuple (Sb_util.Rng.create 4) in
  let first = Ovsp.process p flow in
  let second = Ovsp.process p flow in
  Alcotest.(check bool) "upcall flag" true first.Ovsp.upcall;
  Alcotest.(check bool) "no second upcall" false second.Ovsp.upcall;
  Alcotest.(check bool) "install cost visible" true (first.Ovsp.cycles > second.Ovsp.cycles)

let test_pipeline_matches_analytic_model () =
  (* The executed pipeline and the closed-form model share constants: at
     the model's amortization point (100 packets/connection) they must
     agree within a few percent for every configuration and flow count. *)
  List.iter
    (fun config ->
      List.iter
        (fun flows ->
          let p = Ovsp.create config in
          let st = Ovsp.run_stream p ~flows ~packets:(100 * flows) in
          let analytic = Ovs.cycles_per_packet config ~flows in
          let ratio = st.Ovsp.mean_cycles /. analytic in
          Alcotest.(check bool)
            (Printf.sprintf "executed ~ analytic (%d flows, ratio %.3f)" flows ratio)
            true
            (ratio > 0.9 && ratio < 1.1))
        [ 1; 10; 50 ])
    [ Ovs.Bridge; Ovs.Labels; Ovs.Labels_affinity ]

let test_pipeline_config_ordering () =
  let mean config =
    let p = Ovsp.create config in
    (Ovsp.run_stream p ~flows:20 ~packets:2000).Ovsp.mean_cycles
  in
  Alcotest.(check bool) "bridge < labels < affinity" true
    (mean Ovs.Bridge < mean Ovs.Labels && mean Ovs.Labels < mean Ovs.Labels_affinity)

(* --------------------------- DPDK model ---------------------------- *)

let test_dpdk_single_core_7mpps () =
  let t = Dpdk.throughput_mpps ~cores:1 ~flows_per_core:1024 in
  Alcotest.(check bool) "about 7 Mpps" true (t >= 6.5 && t <= 7.5)

let test_dpdk_six_cores_20mpps () =
  let t = Dpdk.throughput_mpps ~cores:6 ~flows_per_core:524_288 in
  Alcotest.(check bool) "exceeds 20 Mpps at 3M flows" true (t > 20.)

let test_dpdk_marginal_core_gain () =
  (* Each added forwarder contributes 3-4+ Mpps at 512K flows each. *)
  let prev = ref (Dpdk.throughput_mpps ~cores:1 ~flows_per_core:524_288) in
  for cores = 2 to 6 do
    let t = Dpdk.throughput_mpps ~cores ~flows_per_core:524_288 in
    let gain = t -. !prev in
    Alcotest.(check bool)
      (Printf.sprintf "core %d adds 3-4 Mpps (got %.2f)" cores gain)
      true
      (gain >= 2.8 && gain <= 4.5);
    prev := t
  done

let test_dpdk_steady_state_3mpps () =
  let t = Dpdk.throughput_mpps ~cores:1 ~flows_per_core:30_000_000 in
  Alcotest.(check bool) "tens of millions of flows still > 3 Mpps" true (t > 3.)

let test_dpdk_throughput_declines_with_flows () =
  let small = Dpdk.throughput_mpps ~cores:1 ~flows_per_core:1000 in
  let big = Dpdk.throughput_mpps ~cores:1 ~flows_per_core:1_000_000 in
  Alcotest.(check bool) "cache pressure reduces throughput" true (big < small)

let test_dpdk_latency_profile () =
  let low = Dpdk.latency_s ~cores:1 ~flows_per_core:1024 ~load:0.1 in
  let high = Dpdk.latency_s ~cores:1 ~flows_per_core:1024 ~load:0.99999 in
  Alcotest.(check bool) "low load: tens of microseconds" true (low < 100e-6);
  Alcotest.(check bool) "saturation: ~1 ms" true (high > 300e-6 && high < 3e-3)

let test_dpdk_gbps_extrapolation () =
  (* 20 Mpps at 500 B = 80 Gbps (paper abstract). *)
  let gbps = Dpdk.throughput_gbps ~cores:6 ~flows_per_core:524_288 ~packet_bytes:500 in
  Alcotest.(check bool) "around 80+ Gbps" true (gbps > 80.)

let test_dpdk_rejects_bad_args () =
  Alcotest.check_raises "cores" (Invalid_argument "Dpdk_model: cores must be positive")
    (fun () -> ignore (Dpdk.cycles_per_packet ~cores:0 ~flows_per_core:1));
  Alcotest.check_raises "load" (Invalid_argument "Dpdk_model.latency_s: load must be in [0, 1)")
    (fun () -> ignore (Dpdk.latency_s ~cores:1 ~flows_per_core:1 ~load:1.))

(* ------------------- packed-plane equivalence -------------------- *)

module Legacy = Sb_dataplane.Legacy_fabric

(* qcheck (the packed-dataplane oracle): identical random traffic, weight
   churn, rule reinstalls, flow teardown, OpenNF transfers and
   fail/revive/reattach faults driven through the seed implementation
   ([Legacy_fabric]) and the packed plane ([Fabric] = [Plane]) produce
   identical delivery traces, errors, flow-table decisions and stage
   counters. Both fabrics are created with the same RNG seed, so any
   divergence in balancer draw *sequence* (not just distribution) fails
   the property too. Run in both Local and Replicated flow-store modes. *)
let prop_packed_plane_equivalence ~name store =
  QCheck.Test.make ~name ~count:20
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sb_util.Rng.create (seed + 17) in
      let lf = Legacy.create ~seed ~flow_store:store () in
      let pf = Fabric.create ~seed ~flow_store:store () in
      (* Entity ids come from the same fresh-counter discipline in both
         implementations, so mirrored build calls yield equal ids. *)
      let ok = ref true in
      let check b = if not b then ok := false in
      let nsites = 2 + Sb_util.Rng.int rng 3 in
      let sites =
        Array.init nsites (fun i ->
            let a = Legacy.add_site lf (string_of_int i) in
            let b = Fabric.add_site pf (string_of_int i) in
            check (a = b);
            a)
      in
      let fwds =
        Array.map
          (fun s ->
            let a = Legacy.add_forwarder lf ~site:s in
            let b = Fabric.add_forwarder pf ~site:s in
            check (a = b);
            a)
          sites
      in
      let chain_len = 1 + Sb_util.Rng.int rng 3 in
      let vnf_sites = Array.init chain_len (fun _ -> Sb_util.Rng.int rng nsites) in
      let instances =
        Array.init chain_len (fun z ->
            let s = vnf_sites.(z) in
            Array.init
              (1 + Sb_util.Rng.int rng 3)
              (fun _ ->
                let a =
                  Legacy.add_vnf_instance lf ~vnf:(z + 10) ~site:sites.(s)
                    ~forwarder:fwds.(s) ()
                in
                let b =
                  Fabric.add_vnf_instance pf ~vnf:(z + 10) ~site:sites.(s)
                    ~forwarder:fwds.(s) ()
                in
                check (a = b);
                a))
      in
      let in_site = Sb_util.Rng.int rng nsites in
      let out_site = Sb_util.Rng.int rng nsites in
      let ein = Legacy.add_edge lf ~site:sites.(in_site) ~forwarder:fwds.(in_site) in
      check (ein = Fabric.add_edge pf ~site:sites.(in_site) ~forwarder:fwds.(in_site));
      let eout = Legacy.add_edge lf ~site:sites.(out_site) ~forwarder:fwds.(out_site) in
      check (eout = Fabric.add_edge pf ~site:sites.(out_site) ~forwarder:fwds.(out_site));
      let fwd_of_element z = if z = 0 then fwds.(in_site) else fwds.(vnf_sites.(z - 1)) in
      let stage_targets z =
        if z = chain_len then [ (Fabric.Edge eout, 1.) ]
        else
          Array.to_list
            (Array.map
               (fun i -> (Fabric.Vnf_instance i, 0.25 +. Sb_util.Rng.float rng 2.))
               instances.(z))
      in
      let install z =
        let sender = fwd_of_element z in
        let dest_fwd = if z = chain_len then fwds.(out_site) else fwds.(vnf_sites.(z)) in
        let local_rule = stage_targets z in
        let put fwd rule =
          Legacy.install_rule lf ~forwarder:fwd ~chain_label:1 ~egress_label:2 ~stage:z rule;
          Fabric.install_rule pf ~forwarder:fwd ~chain_label:1 ~egress_label:2 ~stage:z rule
        in
        if sender = dest_fwd then put sender local_rule
        else begin
          put sender [ (Fabric.Forwarder dest_fwd, 1.) ];
          put dest_fwd local_rule;
          (* Receiver-side override at the destination, as the control
             plane installs it for cross-site stages. *)
          Legacy.install_rx_rule lf ~forwarder:dest_fwd ~chain_label:1 ~egress_label:2
            ~stage:z local_rule;
          Fabric.install_rx_rule pf ~forwarder:dest_fwd ~chain_label:1 ~egress_label:2
            ~stage:z local_rule
        end
      in
      for z = 0 to chain_len do
        install z
      done;
      let pool = Array.init 6 (fun _ -> Packet.random_tuple rng) in
      let all_insts = Array.concat (Array.to_list instances) in
      for _ = 1 to 60 do
        match Sb_util.Rng.int rng 12 with
        | 0 | 1 | 2 | 3 | 4 ->
          let tuple = pool.(Sb_util.Rng.int rng (Array.length pool)) in
          let a = Legacy.send_forward lf ~ingress:ein ~chain_label:1 ~egress_label:2 tuple in
          let b = Fabric.send_forward pf ~ingress:ein ~chain_label:1 ~egress_label:2 tuple in
          check (a = b)
        | 5 | 6 ->
          let tuple = pool.(Sb_util.Rng.int rng (Array.length pool)) in
          let a = Legacy.send_reverse lf ~egress:eout ~chain_label:1 ~egress_label:2 tuple in
          let b = Fabric.send_reverse pf ~egress:eout ~chain_label:1 ~egress_label:2 tuple in
          check (a = b)
        | 7 ->
          let tuple = pool.(Sb_util.Rng.int rng (Array.length pool)) in
          Legacy.end_flow lf tuple;
          Fabric.end_flow pf tuple
        | 8 ->
          let i = all_insts.(Sb_util.Rng.int rng (Array.length all_insts)) in
          let w = 0.25 +. Sb_util.Rng.float rng 2. in
          Legacy.set_instance_weight lf i w;
          Fabric.set_instance_weight pf i w
        | 9 -> install (Sb_util.Rng.int rng (chain_len + 1))
        | 10 ->
          let f = fwds.(Sb_util.Rng.int rng nsites) in
          if Legacy.forwarder_alive lf f then begin
            Legacy.fail_forwarder lf f;
            Fabric.fail_forwarder pf f
          end
          else begin
            Legacy.revive_forwarder lf f;
            Fabric.revive_forwarder pf f
          end
        | _ -> (
          let i = all_insts.(Sb_util.Rng.int rng (Array.length all_insts)) in
          if Legacy.instance_alive lf i then begin
            Legacy.fail_instance lf i;
            Fabric.fail_instance pf i
          end
          else begin
            Legacy.revive_instance lf i;
            Fabric.revive_instance pf i
          end;
          (* Occasionally an OpenNF transfer between same-VNF siblings. *)
          let z = Sb_util.Rng.int rng chain_len in
          let zi = instances.(z) in
          if Array.length zi >= 2 then begin
            let a = zi.(0) and b = zi.(1) in
            check
              (Legacy.transfer_flows lf ~from_instance:a ~to_instance:b
              = Fabric.transfer_flows pf ~from_instance:a ~to_instance:b)
          end)
      done;
      (* Final-state observables. *)
      Array.iter
        (fun f ->
          check
            (Legacy.flow_table_size lf ~forwarder:f = Fabric.flow_table_size pf ~forwarder:f);
          check
            (Legacy.attached_instances lf ~forwarder:f
            = Fabric.attached_instances pf ~forwarder:f);
          for z = 0 to chain_len - 1 do
            let wa = Legacy.forwarder_published_weight lf f (z + 10) in
            let wb = Fabric.forwarder_published_weight pf f (z + 10) in
            (* Summation order differs (hashtable fold vs id order); the
               documented caveat allows only float-associativity noise. *)
            check (Float.abs (wa -. wb) < 1e-9);
            check
              (Legacy.rule lf ~forwarder:f ~chain_label:1 ~egress_label:2 ~stage:z
              = Fabric.rule pf ~forwarder:f ~chain_label:1 ~egress_label:2 ~stage:z)
          done)
        fwds;
      for z = 0 to chain_len do
        check
          (Legacy.stage_counters lf ~chain_label:1 ~egress_label:2 ~stage:z
          = Fabric.stage_counters pf ~chain_label:1 ~egress_label:2 ~stage:z);
        Array.iter
          (fun s ->
            check
              (Legacy.site_stage_counters lf ~site:s ~chain_label:1 ~egress_label:2 ~stage:z
              = Fabric.site_stage_counters pf ~site:s ~chain_label:1 ~egress_label:2
                  ~stage:z))
          sites
      done;
      !ok)

let prop_packed_equivalence_local =
  prop_packed_plane_equivalence ~name:"packed plane == seed fabric (Local)" Fabric.Local

let prop_packed_equivalence_replicated =
  prop_packed_plane_equivalence
    ~name:"packed plane == seed fabric (Replicated 2)" (Fabric.Replicated 2)

(* --------------------- sharded-fabric equivalence --------------------- *)

module Shard = Sb_dataplane.Shard

(* [Shard.error] = [Fabric.error], so one classifier serves both. Error
   payloads that name a VNF instance are balancer-draw-dependent (the
   plane pins the drawn instance before checking liveness), so the
   multi-lane property compares constructors only. *)
let err_kind : Fabric.error -> int = function
  | Fabric.No_rule _ -> 0
  | No_reverse_entry _ -> 1
  | Instance_down _ -> 2
  | Forwarder_down _ -> 3
  | Ttl_exceeded -> 4
  | Not_an_edge -> 5

(* Shared testbed builder for the shard properties: the same mirrored
   random topology as [prop_packed_plane_equivalence] — 2-4 sites with one
   forwarder each, a 1-3 stage chain with every stage's instances on a
   single forwarder (so the packet path is deterministic at forwarder
   granularity and only the instance *choice* within a stage is a
   balancer draw), edge in/out, cross-site relay + rx rules. *)
type shard_bed = {
  sb_fabric : Fabric.t;
  sb_shard : Shard.t;
  sb_rng : Sb_util.Rng.t;
  sb_check : bool -> unit;
  sb_sites : int array;
  sb_fwds : int array;
  sb_chain_len : int;
  sb_instances : int array array;
  sb_ein : int;
  sb_eout : int;
  sb_install : int -> unit;
}

let build_shard_bed ~seed ~store ~lanes =
  let rng = Sb_util.Rng.create (seed + 17) in
  let f = Fabric.create ~seed ~flow_store:store () in
  let sf = Shard.create ~seed ~flow_store:store ~lanes () in
  let ok = ref true in
  let check b = if not b then ok := false in
  let nsites = 2 + Sb_util.Rng.int rng 3 in
  let sites =
    Array.init nsites (fun i ->
        let a = Fabric.add_site f (string_of_int i) in
        check (a = Shard.add_site sf (string_of_int i));
        a)
  in
  let fwds =
    Array.map
      (fun s ->
        let a = Fabric.add_forwarder f ~site:s in
        check (a = Shard.add_forwarder sf ~site:s);
        a)
      sites
  in
  let chain_len = 1 + Sb_util.Rng.int rng 3 in
  let vnf_sites = Array.init chain_len (fun _ -> Sb_util.Rng.int rng nsites) in
  let instances =
    Array.init chain_len (fun z ->
        let s = vnf_sites.(z) in
        Array.init
          (1 + Sb_util.Rng.int rng 3)
          (fun _ ->
            let a =
              Fabric.add_vnf_instance f ~vnf:(z + 10) ~site:sites.(s)
                ~forwarder:fwds.(s) ()
            in
            check
              (a
              = Shard.add_vnf_instance sf ~vnf:(z + 10) ~site:sites.(s)
                  ~forwarder:fwds.(s) ());
            a))
  in
  let in_site = Sb_util.Rng.int rng nsites in
  let out_site = Sb_util.Rng.int rng nsites in
  let ein = Fabric.add_edge f ~site:sites.(in_site) ~forwarder:fwds.(in_site) in
  check (ein = Shard.add_edge sf ~site:sites.(in_site) ~forwarder:fwds.(in_site));
  let eout = Fabric.add_edge f ~site:sites.(out_site) ~forwarder:fwds.(out_site) in
  check (eout = Shard.add_edge sf ~site:sites.(out_site) ~forwarder:fwds.(out_site));
  let fwd_of_element z = if z = 0 then fwds.(in_site) else fwds.(vnf_sites.(z - 1)) in
  let stage_targets z =
    if z = chain_len then [ (Fabric.Edge eout, 1.) ]
    else
      Array.to_list
        (Array.map
           (fun i -> (Fabric.Vnf_instance i, 0.25 +. Sb_util.Rng.float rng 2.))
           instances.(z))
  in
  let install z =
    let sender = fwd_of_element z in
    let dest_fwd = if z = chain_len then fwds.(out_site) else fwds.(vnf_sites.(z)) in
    (* One draw, applied to both implementations. *)
    let local_rule = stage_targets z in
    let put fwd rule =
      Fabric.install_rule f ~forwarder:fwd ~chain_label:1 ~egress_label:2 ~stage:z rule;
      Shard.install_rule sf ~forwarder:fwd ~chain_label:1 ~egress_label:2 ~stage:z rule
    in
    if sender = dest_fwd then put sender local_rule
    else begin
      put sender [ (Fabric.Forwarder dest_fwd, 1.) ];
      put dest_fwd local_rule;
      Fabric.install_rx_rule f ~forwarder:dest_fwd ~chain_label:1 ~egress_label:2
        ~stage:z local_rule;
      Shard.install_rx_rule sf ~forwarder:dest_fwd ~chain_label:1 ~egress_label:2
        ~stage:z local_rule
    end
  in
  for z = 0 to chain_len do
    install z
  done;
  ( {
      sb_fabric = f;
      sb_shard = sf;
      sb_rng = rng;
      sb_check = check;
      sb_sites = sites;
      sb_fwds = fwds;
      sb_chain_len = chain_len;
      sb_instances = instances;
      sb_ein = ein;
      sb_eout = eout;
      sb_install = install;
    },
    ok )

(* Final-state observables that are balancer-draw-insensitive in this
   testbed: per-forwarder flow-table entry counts (paths are deterministic
   at forwarder granularity), published weights, rules, and the per-stage
   packet/byte counters globally and per site. *)
let check_shard_final_state bed =
  let f = bed.sb_fabric and sf = bed.sb_shard and check = bed.sb_check in
  Array.iter
    (fun fwd ->
      check (Fabric.flow_table_size f ~forwarder:fwd = Shard.flow_table_size sf ~forwarder:fwd);
      let sc, _, _ = Shard.flow_table_stats sf ~forwarder:fwd in
      check (sc = Shard.flow_table_size sf ~forwarder:fwd);
      check (Fabric.attached_instances f ~forwarder:fwd = Shard.attached_instances sf ~forwarder:fwd);
      for z = 0 to bed.sb_chain_len - 1 do
        let wa = Fabric.forwarder_published_weight f fwd (z + 10) in
        let wb = Shard.forwarder_published_weight sf fwd (z + 10) in
        check (Float.abs (wa -. wb) < 1e-9);
        check
          (Fabric.rule f ~forwarder:fwd ~chain_label:1 ~egress_label:2 ~stage:z
          = Shard.rule sf ~forwarder:fwd ~chain_label:1 ~egress_label:2 ~stage:z)
      done)
    bed.sb_fwds;
  for z = 0 to bed.sb_chain_len do
    check
      (Fabric.stage_counters f ~chain_label:1 ~egress_label:2 ~stage:z
      = Shard.stage_counters sf ~chain_label:1 ~egress_label:2 ~stage:z);
    Array.iter
      (fun s ->
        check
          (Fabric.site_stage_counters f ~site:s ~chain_label:1 ~egress_label:2 ~stage:z
          = Shard.site_stage_counters sf ~site:s ~chain_label:1 ~egress_label:2 ~stage:z))
      bed.sb_sites
  done

(* qcheck (lane-count transparency, exact half): a 1-lane shard IS the
   packed plane driven inline — same seed, same single RNG stream — so the
   full fault soup of [prop_packed_plane_equivalence], plus [drive_batch],
   must match the oracle bit for bit: traces, error payloads, draws and
   all. *)
let prop_shard_identity ~name store =
  QCheck.Test.make ~name ~count:20
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let bed, ok = build_shard_bed ~seed ~store ~lanes:1 in
      let f = bed.sb_fabric and sf = bed.sb_shard in
      let rng = bed.sb_rng and check = bed.sb_check in
      let pool = Array.init 6 (fun _ -> Packet.random_tuple rng) in
      let all_insts = Array.concat (Array.to_list bed.sb_instances) in
      Fun.protect
        ~finally:(fun () -> Shard.shutdown sf)
        (fun () ->
          for _ = 1 to 60 do
            match Sb_util.Rng.int rng 12 with
            | 0 | 1 | 2 | 3 | 4 ->
              let tuple = pool.(Sb_util.Rng.int rng (Array.length pool)) in
              check
                (Fabric.send_forward f ~ingress:bed.sb_ein ~chain_label:1 ~egress_label:2
                   tuple
                = Shard.send_forward sf ~ingress:bed.sb_ein ~chain_label:1 ~egress_label:2
                    tuple)
            | 5 | 6 ->
              let tuple = pool.(Sb_util.Rng.int rng (Array.length pool)) in
              check
                (Fabric.send_reverse f ~egress:bed.sb_eout ~chain_label:1 ~egress_label:2
                   tuple
                = Shard.send_reverse sf ~egress:bed.sb_eout ~chain_label:1 ~egress_label:2
                    tuple)
            | 7 ->
              let tuple = pool.(Sb_util.Rng.int rng (Array.length pool)) in
              Fabric.end_flow f tuple;
              Shard.end_flow sf tuple
            | 8 ->
              let i = all_insts.(Sb_util.Rng.int rng (Array.length all_insts)) in
              let w = 0.25 +. Sb_util.Rng.float rng 2. in
              Fabric.set_instance_weight f i w;
              Shard.set_instance_weight sf i w
            | 9 -> bed.sb_install (Sb_util.Rng.int rng (bed.sb_chain_len + 1))
            | 10 ->
              let fwd = bed.sb_fwds.(Sb_util.Rng.int rng (Array.length bed.sb_fwds)) in
              if Fabric.forwarder_alive f fwd then begin
                Fabric.fail_forwarder f fwd;
                Shard.fail_forwarder sf fwd
              end
              else begin
                Fabric.revive_forwarder f fwd;
                Shard.revive_forwarder sf fwd
              end
            | _ -> (
              let i = all_insts.(Sb_util.Rng.int rng (Array.length all_insts)) in
              if Fabric.instance_alive f i then begin
                Fabric.fail_instance f i;
                Shard.fail_instance sf i
              end
              else begin
                Fabric.revive_instance f i;
                Shard.revive_instance sf i
              end;
              let z = Sb_util.Rng.int rng bed.sb_chain_len in
              let zi = bed.sb_instances.(z) in
              if Array.length zi >= 2 then
                check
                  (Fabric.transfer_flows f ~from_instance:zi.(0) ~to_instance:zi.(1)
                  = Shard.transfer_flows sf ~from_instance:zi.(0) ~to_instance:zi.(1)))
          done;
          (* The batch path at 1 lane is an inline [Fabric.drive] loop. *)
          let batch =
            Array.init 30 (fun _ -> pool.(Sb_util.Rng.int rng (Array.length pool)))
          in
          let oracle =
            Array.fold_left
              (fun acc tu ->
                if
                  Fabric.drive f ~ingress:bed.sb_ein ~chain_label:1 ~egress_label:2
                    ~size:100 tu
                then acc + 1
                else acc)
              0 batch
          in
          check
            (oracle
            = Shard.drive_batch sf ~ingress:bed.sb_ein ~chain_label:1 ~egress_label:2
                ~size:100 batch);
          check_shard_final_state bed;
          !ok))

(* qcheck (lane-count transparency, distributional half): for D in
   {1, 2, 4} a shard must agree with the single-plane oracle on every
   draw-insensitive observable — per-flow outcome *kinds*, traversed VNF
   sequences, per-forwarder table entry counts, and all stage counters —
   under a soup restricted to draw-insensitive faults: whole-VNF
   fail/revive (a stage is all-dead or all-live, so any drawn instance
   gives the same outcome kind) and forwarder fail/revive (paths are
   forwarder-deterministic here). Per-instance faults would make the
   outcome depend on which sibling a lane's private RNG drew; the D = 1
   identity property covers those. *)
let prop_shard_equivalence ~name store =
  QCheck.Test.make ~name ~count:12
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      List.for_all
        (fun lanes ->
          let bed, ok = build_shard_bed ~seed ~store ~lanes in
          let f = bed.sb_fabric and sf = bed.sb_shard in
          let rng = bed.sb_rng and check = bed.sb_check in
          let pool = Array.init 6 (fun _ -> Packet.random_tuple rng) in
          let stage_alive z = Fabric.instance_alive f bed.sb_instances.(z).(0) in
          let compare_sends a b =
            match (a, b) with
            | Ok ta, Ok tb ->
              check (Fabric.vnfs_in_trace f ta = Shard.vnfs_in_trace sf tb)
            | Error ea, Error eb -> check (err_kind ea = err_kind eb)
            | _ -> check false
          in
          Fun.protect
            ~finally:(fun () -> Shard.shutdown sf)
            (fun () ->
              for _ = 1 to 60 do
                match Sb_util.Rng.int rng 12 with
                | 0 | 1 | 2 | 3 | 4 ->
                  let tuple = pool.(Sb_util.Rng.int rng (Array.length pool)) in
                  compare_sends
                    (Fabric.send_forward f ~ingress:bed.sb_ein ~chain_label:1
                       ~egress_label:2 tuple)
                    (Shard.send_forward sf ~ingress:bed.sb_ein ~chain_label:1
                       ~egress_label:2 tuple)
                | 5 | 6 ->
                  let tuple = pool.(Sb_util.Rng.int rng (Array.length pool)) in
                  compare_sends
                    (Fabric.send_reverse f ~egress:bed.sb_eout ~chain_label:1
                       ~egress_label:2 tuple)
                    (Shard.send_reverse sf ~egress:bed.sb_eout ~chain_label:1
                       ~egress_label:2 tuple)
                | 7 ->
                  let tuple = pool.(Sb_util.Rng.int rng (Array.length pool)) in
                  Fabric.end_flow f tuple;
                  Shard.end_flow sf tuple
                | 8 ->
                  let z = Sb_util.Rng.int rng bed.sb_chain_len in
                  let zi = bed.sb_instances.(z) in
                  let i = zi.(Sb_util.Rng.int rng (Array.length zi)) in
                  let w = 0.25 +. Sb_util.Rng.float rng 2. in
                  Fabric.set_instance_weight f i w;
                  Shard.set_instance_weight sf i w
                | 9 -> bed.sb_install (Sb_util.Rng.int rng (bed.sb_chain_len + 1))
                | 10 ->
                  let fwd = bed.sb_fwds.(Sb_util.Rng.int rng (Array.length bed.sb_fwds)) in
                  if Fabric.forwarder_alive f fwd then begin
                    Fabric.fail_forwarder f fwd;
                    Shard.fail_forwarder sf fwd
                  end
                  else begin
                    Fabric.revive_forwarder f fwd;
                    Shard.revive_forwarder sf fwd
                  end
                | _ ->
                  (* Whole-VNF toggle: fail or revive every sibling of one
                     stage together. An OpenNF transfer between siblings is
                     mirrored but its moved count is not compared — each
                     lane pinned a different subset of the connections. *)
                  let z = Sb_util.Rng.int rng bed.sb_chain_len in
                  let zi = bed.sb_instances.(z) in
                  let toggle =
                    if stage_alive z then (Fabric.fail_instance, Shard.fail_instance)
                    else (Fabric.revive_instance, Shard.revive_instance)
                  in
                  Array.iter
                    (fun i ->
                      (fst toggle) f i;
                      (snd toggle) sf i)
                    zi;
                  if Array.length zi >= 2 && Sb_util.Rng.int rng 2 = 0 then begin
                    ignore (Fabric.transfer_flows f ~from_instance:zi.(0) ~to_instance:zi.(1));
                    ignore (Shard.transfer_flows sf ~from_instance:zi.(0) ~to_instance:zi.(1))
                  end
              done;
              (* Exercise the pool + SPSC handoff path: delivery counts are
                 draw-insensitive (liveness is whole-stage), so the batch
                 totals must agree exactly. *)
              let batch =
                Array.init 64 (fun _ -> pool.(Sb_util.Rng.int rng (Array.length pool)))
              in
              let oracle =
                Array.fold_left
                  (fun acc tu ->
                    if
                      Fabric.drive f ~ingress:bed.sb_ein ~chain_label:1 ~egress_label:2
                        ~size:100 tu
                    then acc + 1
                    else acc)
                  0 batch
              in
              check
                (oracle
                = Shard.drive_batch sf ~ingress:bed.sb_ein ~chain_label:1 ~egress_label:2
                    ~size:100 batch);
              check_shard_final_state bed;
              !ok))
        [ 1; 2; 4 ])

let prop_shard_identity_local =
  prop_shard_identity ~name:"1-lane shard == packed plane, bit-exact (Local)" Fabric.Local

let prop_shard_identity_replicated =
  prop_shard_identity
    ~name:"1-lane shard == packed plane, bit-exact (Replicated 2)" (Fabric.Replicated 2)

let prop_shard_equivalence_local =
  prop_shard_equivalence
    ~name:"sharded fabric == oracle, D in {1,2,4} (Local)" Fabric.Local

let prop_shard_equivalence_replicated =
  prop_shard_equivalence
    ~name:"sharded fabric == oracle, D in {1,2,4} (Replicated 2)" (Fabric.Replicated 2)

let () =
  Alcotest.run "sb_dataplane"
    [
      ( "packet",
        [
          Alcotest.test_case "reverse tuple" `Quick test_reverse_tuple;
          Alcotest.test_case "canonical" `Quick test_canonical;
          Alcotest.test_case "forward packet" `Quick test_forward_packet;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "roundtrip" `Quick test_flow_table_roundtrip;
          Alcotest.test_case "remove flow" `Quick test_flow_table_remove_flow;
          Alcotest.test_case "overwrite" `Quick test_flow_table_overwrite;
        ] );
      ( "balancer",
        [
          Alcotest.test_case "weights respected" `Quick test_pick_respects_weights;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "hierarchical compose" `Quick test_compose_hierarchical;
          Alcotest.test_case "forwarder weight" `Quick test_forwarder_weight;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "conformity" `Quick test_conformity;
          Alcotest.test_case "trace endpoints" `Quick test_trace_endpoints;
          Alcotest.test_case "flow affinity" `Quick test_flow_affinity;
          Alcotest.test_case "symmetric return" `Quick test_symmetric_return;
          Alcotest.test_case "reverse needs forward" `Quick test_reverse_without_forward_fails;
          Alcotest.test_case "load balancing spreads" `Quick test_load_balancing_spreads;
          Alcotest.test_case "weight skew respected" `Quick test_weight_skew_respected;
          Alcotest.test_case "affinity survives weight change" `Quick
            test_affinity_survives_weight_change;
          Alcotest.test_case "symmetric return after route change" `Quick
            test_symmetric_return_after_route_change;
          Alcotest.test_case "flow table sizes" `Quick test_flow_table_sizes;
          Alcotest.test_case "end flow clears state" `Quick test_end_flow_clears_state;
          Alcotest.test_case "no rule error" `Quick test_no_rule_error;
          Alcotest.test_case "rule loop detected" `Quick test_rule_loop_detected;
          Alcotest.test_case "published weight" `Quick test_published_weight;
          Alcotest.test_case "same-site chain" `Quick test_same_site_chain;
          Alcotest.test_case "instance failure breaks pinned flows" `Quick
            test_instance_failure_breaks_pinned_flows;
          Alcotest.test_case "OpenNF transfer preserves affinity" `Quick
            test_transfer_flows_preserves_affinity;
          Alcotest.test_case "transfer rejects cross-VNF" `Quick
            test_transfer_flows_rejects_cross_vnf;
          Alcotest.test_case "transfer leaves others untouched" `Quick
            test_transfer_flows_other_connections_untouched;
          Alcotest.test_case "transfer across forwarders" `Quick
            test_transfer_flows_across_forwarders;
          Alcotest.test_case "forwarder failure (local) loses affinity" `Quick
            test_forwarder_failure_local_loses_affinity;
          Alcotest.test_case "forwarder failure (DHT) keeps affinity" `Quick
            test_forwarder_failure_replicated_keeps_affinity;
          Alcotest.test_case "forwarder-down error" `Quick test_forwarder_down_error;
          Alcotest.test_case "replicated-mode safety" `Quick test_replicated_mode_basic_safety;
        ] );
      ( "traffic_gen",
        [
          Alcotest.test_case "flow population" `Quick test_tgen_flow_population;
          Alcotest.test_case "uniform coverage" `Quick test_tgen_uniform_coverage;
          Alcotest.test_case "zipf skew" `Quick test_tgen_zipf_skew;
          Alcotest.test_case "IMIX sizes" `Quick test_tgen_imix_sizes;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "counters once per stage" `Quick test_counters_once_per_stage;
          Alcotest.test_case "isolated per chain" `Quick test_counters_isolated_per_chain;
          Alcotest.test_case "reset" `Quick test_counters_reset;
        ] );
      ( "dht_table",
        [
          Alcotest.test_case "put/get" `Quick test_dht_put_get;
          Alcotest.test_case "replication count" `Quick test_dht_replication_count;
          Alcotest.test_case "survives node failure" `Quick test_dht_survives_node_failure;
          Alcotest.test_case "re-replicates" `Quick test_dht_rereplicates_after_failure;
          Alcotest.test_case "k=1 loses on failure" `Quick test_dht_single_node_loses_on_failure;
          Alcotest.test_case "balance" `Quick test_dht_balance;
          Alcotest.test_case "minimal disruption on join" `Quick
            test_dht_minimal_disruption_on_join;
          Alcotest.test_case "empty ring" `Quick test_dht_empty_ring;
          Alcotest.test_case "remove key" `Quick test_dht_remove_key;
        ] );
      ( "ovs_model",
        [
          Alcotest.test_case "label overhead band" `Quick test_ovs_label_overhead_band;
          Alcotest.test_case "affinity overhead band" `Quick test_ovs_affinity_overhead_band;
          Alcotest.test_case "overhead shrinks with flows" `Quick
            test_ovs_overhead_shrinks_with_flows;
          Alcotest.test_case "throughput declines with flows" `Quick
            test_ovs_throughput_declines_with_flows;
          Alcotest.test_case "config ordering" `Quick test_ovs_config_ordering;
        ] );
      ( "ovs_pipeline",
        [
          Alcotest.test_case "upcall once per flow" `Quick test_pipeline_upcall_once_per_flow;
          Alcotest.test_case "affinity port stable" `Quick test_pipeline_affinity_port_stable;
          Alcotest.test_case "affinity spreads ports" `Quick test_pipeline_affinity_spreads_ports;
          Alcotest.test_case "first packet costs more" `Quick
            test_pipeline_first_packet_costs_more;
          Alcotest.test_case "matches analytic model" `Quick test_pipeline_matches_analytic_model;
          Alcotest.test_case "config ordering" `Quick test_pipeline_config_ordering;
        ] );
      ( "dpdk_model",
        [
          Alcotest.test_case "single core ~7 Mpps" `Quick test_dpdk_single_core_7mpps;
          Alcotest.test_case "6 cores > 20 Mpps" `Quick test_dpdk_six_cores_20mpps;
          Alcotest.test_case "marginal core gain 3-4 Mpps" `Quick test_dpdk_marginal_core_gain;
          Alcotest.test_case "steady state > 3 Mpps" `Quick test_dpdk_steady_state_3mpps;
          Alcotest.test_case "declines with flows" `Quick test_dpdk_throughput_declines_with_flows;
          Alcotest.test_case "latency profile" `Quick test_dpdk_latency_profile;
          Alcotest.test_case "80 Gbps extrapolation" `Quick test_dpdk_gbps_extrapolation;
          Alcotest.test_case "rejects bad args" `Quick test_dpdk_rejects_bad_args;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_safety_random_chains;
          QCheck_alcotest.to_alcotest prop_counter_window_semantics;
          QCheck_alcotest.to_alcotest prop_dht_no_loss_under_churn;
          QCheck_alcotest.to_alcotest prop_balancer_hierarchical_convergence;
          QCheck_alcotest.to_alcotest prop_packed_equivalence_local;
          QCheck_alcotest.to_alcotest prop_packed_equivalence_replicated;
          QCheck_alcotest.to_alcotest prop_shard_identity_local;
          QCheck_alcotest.to_alcotest prop_shard_identity_replicated;
          QCheck_alcotest.to_alcotest prop_shard_equivalence_local;
          QCheck_alcotest.to_alcotest prop_shard_equivalence_replicated;
        ] );
    ]
