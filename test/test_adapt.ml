module Engine = Sb_sim.Engine
module Model = Sb_core.Model
module Routing = Sb_core.Routing
module Dp = Sb_core.Dp_routing
module Workload = Sb_core.Workload
module Topology = Sb_net.Topology
module System = Sb_ctrl.System
module Ct = Sb_ctrl.Types
module Packet = Sb_dataplane.Packet
module Telemetry = Sb_adapt.Telemetry
module Loop = Sb_adapt.Loop
module Place = Sb_adapt.Place
module Scenario = Sb_adapt.Scenario

let small_model ?(seed = 11) ?(chains = 10) () =
  let rng = Sb_util.Rng.create seed in
  let topo = Topology.backbone ~rng ~num_core:4 ~pops_per_core:2 () in
  Workload.synthesize ~rng topo
    { Workload.default with Workload.num_chains = chains; coverage = 0.5 }

(* --------------------------- Dp_routing.resolve --------------------------- *)

let test_resolve_noop_under_infinite_hysteresis () =
  let m = small_model () in
  let prev = Dp.solve m in
  let r, stats = Dp.resolve ~hysteresis:infinity ~prev m in
  Alcotest.(check (list int)) "nothing re-routed" [] stats.Dp.rerouted;
  Alcotest.(check int) "every routed chain scanned" (Model.num_chains m)
    stats.Dp.considered;
  for c = 0 to Model.num_chains m - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "chain %d paths preserved" c)
      true
      (Routing.decompose_paths r ~chain:c = Routing.decompose_paths prev ~chain:c)
  done;
  Alcotest.(check (float 1e-9)) "identical alpha" (Routing.max_alpha prev)
    (Routing.max_alpha r)

let test_resolve_respects_churn_budget () =
  let m = small_model () in
  let prev = Dp.solve m in
  (* Invert the traffic mix so many chains want to move, then cap churn. *)
  let n = Model.num_chains m in
  let m' =
    Model.with_chain_traffic_factors m
      (Array.init n (fun c -> if c mod 2 = 0 then 3.0 else 0.25))
  in
  let _, unbounded = Dp.resolve ~hysteresis:0.0 ~prev m' in
  let _, bounded = Dp.resolve ~hysteresis:0.0 ~churn_budget:2 ~prev m' in
  Alcotest.(check bool) "shift creates pressure" true
    (unbounded.Dp.over_threshold > 2);
  Alcotest.(check int) "budget binds" 2 (List.length bounded.Dp.rerouted);
  Alcotest.(check int) "threshold count unchanged by budget"
    unbounded.Dp.over_threshold bounded.Dp.over_threshold;
  (* The budget takes the highest-gain chains: the bounded pick is a
     prefix of the unbounded gain ranking. *)
  List.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "rank %d matches" i)
        (List.nth unbounded.Dp.rerouted i)
        c)
    bounded.Dp.rerouted

let test_resolve_deterministic () =
  let m = small_model () in
  let prev = Dp.solve m in
  let m' =
    Model.with_chain_traffic_factors m
      (Array.init (Model.num_chains m) (fun c -> 1. +. (0.3 *. float_of_int (c mod 3))))
  in
  let r1, s1 = Dp.resolve ~prev m' in
  let r2, s2 = Dp.resolve ~prev m' in
  Alcotest.(check (list int)) "same chains moved" s1.Dp.rerouted s2.Dp.rerouted;
  Alcotest.(check (float 0.)) "same alpha" (Routing.max_alpha r1) (Routing.max_alpha r2)

let hottest_duplex m routing =
  let ls = Routing.load_state routing in
  let topo = Model.topology m in
  let links = Topology.links topo in
  let best = ref (-1., []) in
  Array.iter
    (fun (l : Topology.link) ->
      if l.Topology.src < l.Topology.dst then begin
        let ids =
          Array.to_list links
          |> List.filter_map (fun (k : Topology.link) ->
                 if
                   (k.Topology.src = l.Topology.src && k.Topology.dst = l.Topology.dst)
                   || (k.Topology.src = l.Topology.dst && k.Topology.dst = l.Topology.src)
                 then Some k.Topology.id
                 else None)
        in
        let load =
          List.fold_left
            (fun acc i -> acc +. Sb_core.Load_state.link_sb_load ls i)
            0. ids
        in
        if load > fst !best then best := (load, ids)
      end)
    links;
  snd !best

let test_resolve_reacts_to_link_failure () =
  let m = small_model () in
  let prev = Dp.solve m in
  let failed = hottest_duplex m prev in
  Alcotest.(check bool) "some loaded duplex exists" true (failed <> []);
  let m' = Model.with_failed_links m failed in
  let r, stats = Dp.resolve ~hysteresis:0.05 ~prev m' in
  Alcotest.(check bool) "failure triggers re-routes" true (stats.Dp.rerouted <> []);
  (match Routing.validate r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "resolved routing invalid: %s" e);
  (* The re-solve must do at least as well as leaving the old routes in
     place on the degraded topology. *)
  let stale = Routing.create m' in
  for c = 0 to Model.num_chains m - 1 do
    List.iter
      (fun (nodes, frac) -> Routing.add_path stale ~chain:c ~nodes ~frac)
      (Routing.decompose_paths prev ~chain:c)
  done;
  Alcotest.(check bool) "alpha not worse than stale routes" true
    (Routing.max_alpha r >= Routing.max_alpha stale -. 1e-9)

(* ------------------------- telemetry round trip ------------------------- *)

(* Two sites 10 ms apart; one single-VNF chain ingress at 0, VNF and egress
   at 1. Epoch length 1 s. *)
let make_system () =
  let sys =
    System.create ~seed:5 ~num_sites:2
      ~delay:(fun a b -> if a = b then 0. else 0.010)
      ~gsb_site:0 ()
  in
  System.deploy_vnf sys ~vnf:0 ~site:1 ~capacity:100. ~instances:1;
  System.register_edge sys ~site:0 ~attachment:"in";
  System.register_edge sys ~site:1 ~attachment:"out";
  System.set_route_policy sys (fun _ ~exclude:_ ->
      Some [ { Ct.element_sites = [| 0; 1; 1 |]; weight = 1.0 } ]);
  let chain =
    System.request_chain sys
      {
        Ct.spec_name = "t";
        ingress_attachment = "in";
        egress_attachment = "out";
        vnfs = [ 0 ];
        traffic = 5.;
      }
  in
  Engine.run (System.engine sys);
  (sys, chain)

let test_telemetry_roundtrip_and_staleness () =
  let sys, chain = make_system () in
  let eng = System.engine sys in
  let exporters =
    List.map
      (fun site -> Telemetry.Exporter.start ~system:sys ~site ~period:1.0 ())
      [ 0; 1 ]
  in
  let agg =
    Telemetry.Aggregator.create ~system:sys ~site:0 ~chains:[ chain ] ~num_sites:2
      ~staleness:2 ()
  in
  let t0 = Engine.now eng in
  let rng = Sb_util.Rng.create 9 in
  let inject count =
    for _ = 1 to count do
      ignore (System.probe_chain sys ~chain (Packet.random_tuple rng))
    done
  in
  ignore (Engine.schedule_at eng ~time:(t0 +. 0.2) (fun () -> inject 7));
  ignore (Engine.schedule_at eng ~time:(t0 +. 1.2) (fun () -> inject 11));
  (* The aggregator retains only the freshest sample per (chain, site), so
     each epoch must be read at its control tick — shortly after the
     epoch's exports land — exactly as the control loop does. *)
  let q = Array.make 3 None in
  let stages1 = ref [||] in
  for e = 0 to 2 do
    ignore
      (Engine.schedule_at eng
         ~time:(t0 +. float_of_int (e + 1) +. 0.3)
         (fun () ->
           q.(e) <- Telemetry.Aggregator.chain_packets agg ~epoch:e ~chain;
           if e = 1 then stages1 := Telemetry.Aggregator.chain_stages agg ~epoch:1 ~chain))
  done;
  ignore
    (Engine.schedule_at eng ~time:(t0 +. 3.5) (fun () ->
         List.iter Telemetry.Exporter.stop exporters));
  Engine.run eng;
  (* Windows 0/1/2 were exported (the stop lands before the epoch-3 tick). *)
  Alcotest.(check int) "last epoch seen" 2 (Telemetry.Aggregator.last_epoch agg);
  Alcotest.(check bool) "reports flowed" true (Telemetry.Aggregator.reports agg > 0);
  Alcotest.(check (option int)) "epoch 0 packets" (Some 7) q.(0);
  Alcotest.(check (option int)) "epoch 1 packets (delta, not cumulative)" (Some 11) q.(1);
  Alcotest.(check (option int)) "quiet window still reports" (Some 0) q.(2);
  (* Per-stage view: a 1-VNF chain has stages 0 (into the VNF) and 1 (to
     the egress), both carrying every probe of the window. *)
  Alcotest.(check int) "two stages" 2 (Array.length !stages1);
  Array.iteri
    (fun i (pkts, _) -> Alcotest.(check int) (Printf.sprintf "stage %d" i) 11 pkts)
    !stages1;
  (* Staleness: with staleness 2, the epoch-2 samples serve queries up to
     epoch 3 and age out at epoch 4. *)
  Alcotest.(check (option int)) "held one epoch past last report" (Some 0)
    (Telemetry.Aggregator.chain_packets agg ~epoch:3 ~chain);
  Alcotest.(check (option int)) "aged out after staleness window" None
    (Telemetry.Aggregator.chain_packets agg ~epoch:4 ~chain)

let test_update_routes_rollout () =
  let sys, chain = make_system () in
  let eng = System.engine sys in
  System.update_routes sys ~chain [ { Ct.element_sites = [| 0; 1; 1 |]; weight = 0.5 } ];
  Engine.run eng;
  match
    List.filter (fun (r : Ct.route) -> r.Ct.weight > 0.) (System.chain_routes sys ~chain)
  with
  | [ r ] ->
    Alcotest.(check (float 1e-9)) "new weight installed" 0.5 r.Ct.weight;
    Alcotest.(check (array int)) "sites preserved" [| 0; 1; 1 |] r.Ct.element_sites
  | rs -> Alcotest.failf "expected 1 installed route, got %d" (List.length rs)

(* ----------------------------- closed loop ----------------------------- *)

let smoke_scenario () =
  let m = small_model ~seed:3 ~chains:8 () in
  {
    Loop.sc_model = m;
    sc_epochs = 4;
    sc_epoch_len = 1.0;
    sc_demand = (fun ~epoch:_ ~chain:_ -> 1.0);
    sc_failures = [];
  }

let test_closed_loop_smoke_deterministic () =
  let sc = smoke_scenario () in
  let params = { Loop.default_params with Loop.churn_budget = 3 } in
  let r1 = Loop.run ~params sc Loop.Closed_loop in
  let r2 = Loop.run ~params sc Loop.Closed_loop in
  Alcotest.(check int) "all epochs evaluated" 4 (List.length r1.Loop.epochs);
  List.iter2
    (fun (a : Loop.epoch_report) (b : Loop.epoch_report) ->
      Alcotest.(check (float 0.)) "supported deterministic" a.Loop.ep_supported
        b.Loop.ep_supported;
      Alcotest.(check int) "churn deterministic" a.Loop.ep_rerouted b.Loop.ep_rerouted;
      Alcotest.(check bool) "traffic flows" true (a.Loop.ep_supported > 0.);
      Alcotest.(check bool) "churn within budget" true
        (a.Loop.ep_rerouted <= params.Loop.churn_budget))
    r1.Loop.epochs r2.Loop.epochs

let test_closed_loop_tracks_static_on_steady_demand () =
  (* Constant demand and no failures: the closed loop has nothing to
     exploit, so it must at least match the static arm (it may micro-tune
     the greedy initial solution but never regress it). *)
  let sc = smoke_scenario () in
  let closed = Loop.run sc Loop.Closed_loop in
  let static = Loop.run sc Loop.Static in
  List.iter2
    (fun (c : Loop.epoch_report) (s : Loop.epoch_report) ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d closed >= 0.99 static" c.Loop.ep_epoch)
        true
        (c.Loop.ep_supported >= (0.99 *. s.Loop.ep_supported) -. 1e-9))
    closed.Loop.epochs static.Loop.epochs

(* ----------------------------- anycast arm ----------------------------- *)

module Anycast = Sb_adapt.Anycast
module Greedy = Sb_core.Greedy
module Schedule = Sb_chaos.Schedule
module Inject = Sb_chaos.Inject

(* Fresh epoch-0 views for every site: each peer advertised every VNF it
   hosts at [load vnf site] this epoch, no down links — the perfect-flood
   fixture the equivalence property needs. *)
let fresh_views m ~load =
  let n = Model.num_sites m in
  let loads_of = Array.make n [] in
  for f = 0 to Model.num_vnfs m - 1 do
    List.iter
      (fun (s, _cap) -> loads_of.(s) <- (f, load f s) :: loads_of.(s))
      (Model.vnf_sites m f)
  done;
  Array.init n (fun site ->
      let v = Anycast.create_view ~site ~num_sites:n ~staleness:3 in
      for peer = 0 to n - 1 do
        Anycast.observe v ~site:peer ~epoch:0 ~loads:loads_of.(peer) ~fwd_weights:[]
          ~down:[]
      done;
      Anycast.set_epoch v 0;
      v)

let model_arb =
  QCheck.(pair (int_range 1 10_000) (int_range 4 12))
  |> QCheck.map ~rev:(fun _ -> (11, 10)) (fun (seed, chains) ->
         (seed, chains, small_model ~seed ~chains ()))
  |> QCheck.set_print (fun (seed, chains, _) ->
         Printf.sprintf "seed=%d chains=%d" seed chains)

(* Whatever the flooded loads say — under-loaded, saturated, mixed — the
   emergent per-hop routing must stay well-formed: every chain fully
   routed, flow conserved, stage endpoints legal, elements only on
   deployment nodes (i.e. chain-order-conformant and loop-free by
   construction of the stage walk). *)
let anycast_routing_valid =
  QCheck.Test.make ~name:"anycast route from flooded views is a valid routing"
    ~count:25 model_arb (fun (seed, _chains, m) ->
      (* Deterministic mixed loads: some sites idle, some past capacity. *)
      let load f s =
        let cap = Model.vnf_site_capacity m ~vnf:f ~site:s in
        cap *. (float_of_int ((seed + (31 * f) + (17 * s)) mod 5) /. 3.)
      in
      let views = fresh_views m ~load in
      let r = Anycast.route m (fun s -> views.(s)) in
      (match Routing.validate r with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invalid routing: %s" e);
      for c = 0 to Model.num_chains m - 1 do
        let paths = Routing.decompose_paths r ~chain:c in
        let total = List.fold_left (fun a (_, f) -> a +. f) 0. paths in
        if Float.abs (total -. 1.) > 1e-9 then
          QCheck.Test.fail_reportf "chain %d routes %.6f of its demand" c total;
        List.iter
          (fun (nodes, _) ->
            if Array.length nodes <> Model.chain_length m c + 2 then
              QCheck.Test.fail_reportf "chain %d: path skips or repeats a stage" c)
          paths
      done;
      true)

(* With perfect information — every site freshly advertising zero load —
   the decentralized walk must coincide with the centralized ANYCAST
   baseline: nearest admissible instance at every stage. *)
let anycast_matches_centralized =
  QCheck.Test.make
    ~name:"fresh unloaded views: anycast arm = centralized Greedy.anycast" ~count:25
    model_arb (fun (_seed, _chains, m) ->
      let views = fresh_views m ~load:(fun _ _ -> 0.) in
      let dist = Anycast.route m (fun s -> views.(s)) in
      let central = Greedy.anycast m in
      for c = 0 to Model.num_chains m - 1 do
        if
          Routing.decompose_paths dist ~chain:c
          <> Routing.decompose_paths central ~chain:c
        then QCheck.Test.fail_reportf "chain %d diverges from the baseline" c
      done;
      true)

let test_anycast_smoke_deterministic () =
  let sc = smoke_scenario () in
  let r1 = Loop.run sc Loop.Anycast_dist in
  let r2 = Loop.run sc Loop.Anycast_dist in
  Alcotest.(check int) "all epochs evaluated" 4 (List.length r1.Loop.epochs);
  Alcotest.(check int) "same total churn" r1.Loop.total_rerouted r2.Loop.total_rerouted;
  List.iter2
    (fun (a : Loop.epoch_report) (b : Loop.epoch_report) ->
      Alcotest.(check (float 0.)) "supported bit-identical" a.Loop.ep_supported
        b.Loop.ep_supported;
      Alcotest.(check (float 0.)) "rtt bit-identical" a.Loop.ep_mean_rtt
        b.Loop.ep_mean_rtt;
      Alcotest.(check int) "re-points identical" a.Loop.ep_rerouted b.Loop.ep_rerouted;
      Alcotest.(check int) "advert count identical" a.Loop.ep_reports b.Loop.ep_reports;
      Alcotest.(check bool) "traffic flows" true (a.Loop.ep_supported > 0.))
    r1.Loop.epochs r2.Loop.epochs;
  (* Adverts flood from the first advertise tick on. *)
  match List.rev r1.Loop.epochs with
  | last :: _ -> Alcotest.(check bool) "adverts flowed" true (last.Loop.ep_reports > 0)
  | [] -> Alcotest.fail "no epochs"

(* The offline arms never assemble a control plane, so handing them a
   chaos hook must be an error, not a silent no-op. *)
let test_on_system_rejected_on_offline_arms () =
  let sc = smoke_scenario () in
  List.iter
    (fun arm ->
      match Loop.run ~on_system:(fun _ -> ()) sc arm with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s arm accepted ~on_system" (Loop.arm_name arm))
    [ Loop.Static; Loop.Oracle ]

(* Fault-injection path through the closed loop: a GSB outage covering the
   whole run means no control tick ever fires — the loop is frozen at its
   initial solve and scores exactly like the static arm, even as demand
   drifts under it. *)
let test_closed_loop_frozen_under_full_gsb_outage () =
  let m = small_model ~seed:3 ~chains:8 () in
  let sc =
    {
      Loop.sc_model = m;
      sc_epochs = 4;
      sc_epoch_len = 1.0;
      sc_demand =
        (fun ~epoch ~chain -> 1.0 +. (0.2 *. float_of_int ((epoch + chain) mod 3)));
      sc_failures = [];
    }
  in
  (* Horizon past the last control tick (epoch 2's, at 3.0 + control_lag). *)
  let sched =
    Schedule.gsb_outage ~seed:1 ~num_sites:(Model.num_sites m) ~horizon:6. ~start:0.
      ~fraction:1.
  in
  let rng = Sb_util.Rng.create 5 in
  let frozen =
    Loop.run ~on_system:(fun sys -> Inject.arm ~sys ~rng sched) sc Loop.Closed_loop
  in
  let static = Loop.run sc Loop.Static in
  Alcotest.(check int) "no control tick fires" 0 frozen.Loop.total_rerouted;
  List.iter2
    (fun (f : Loop.epoch_report) (s : Loop.epoch_report) ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "epoch %d frozen = static" f.Loop.ep_epoch)
        s.Loop.ep_supported f.Loop.ep_supported)
    frozen.Loop.epochs static.Loop.epochs

(* ------------- elastic placement: acceptance (ISSUE 10) -------------- *)

(* The flash-crowd sweep at CI scale (12 ticks so the planner's observe
   window fits inside the flash window; ~0.4 s). Acceptance: where the
   route-only loop saturates, the placement-armed loop recovers at least
   90% of what perfect advance provisioning (the oracle arm) achieves —
   measured 104.6% over the flash window and 100.6% over the whole run,
   since the planner may open several sites per VNF where the oracle
   extras are capped at one — while route-only is left well behind
   (measured 65.0% of oracle over the flash), and the deployment churn
   stays within the planner's budget. *)
let placement_cfg = { Scenario.smoke_config with Scenario.ticks = 12 }

let placement_arm name points =
  match List.find_opt (fun p -> p.Scenario.pl_arm = name) points with
  | Some p -> p
  | None -> Alcotest.failf "sweep missing arm %s" name

let test_placement_recovers_oracle_provisioning () =
  let points = Scenario.placement_sweep placement_cfg in
  let route_only = placement_arm "route-only" points in
  let placed = placement_arm "placement" points in
  let oracle = placement_arm "oracle" points in
  (* The crowd actually saturates the sparse footprint: route-only loses
     at least a quarter of the oracle's flash-window demand. *)
  Alcotest.(check bool) "route-only saturates during the flash" true
    (route_only.Scenario.pl_flash <= 0.75 *. oracle.Scenario.pl_flash);
  (* Elastic placement recovers >= 90% of perfect provisioning. *)
  Alcotest.(check bool) "placement >= 0.9 oracle (flash window)" true
    (placed.Scenario.pl_flash >= 0.9 *. oracle.Scenario.pl_flash);
  Alcotest.(check bool) "placement >= 0.9 oracle (whole run)" true
    (placed.Scenario.pl_mean >= 0.9 *. oracle.Scenario.pl_mean);
  (* The planner acts, and within its churn budget. *)
  let budget = 2 * Place.default_params.Place.max_extra in
  Alcotest.(check bool) "planner emitted actions" true
    (placed.Scenario.pl_scale_actions > 0);
  Alcotest.(check bool) "churn within budget" true
    (placed.Scenario.pl_scale_actions <= budget);
  Alcotest.(check int) "route-only never scales" 0
    route_only.Scenario.pl_scale_actions;
  Alcotest.(check int) "oracle never scales" 0 oracle.Scenario.pl_scale_actions

let test_placement_sweep_deterministic () =
  let show points =
    String.concat "\n"
      (List.map
         (fun p -> Format.asprintf "%a" Scenario.pp_placement_point p)
         points)
  in
  Alcotest.(check string) "two runs bit-identical"
    (show (Scenario.placement_sweep placement_cfg))
    (show (Scenario.placement_sweep placement_cfg))

let () =
  Alcotest.run "sb_adapt"
    [
      ( "resolve",
        [
          Alcotest.test_case "noop under infinite hysteresis" `Quick
            test_resolve_noop_under_infinite_hysteresis;
          Alcotest.test_case "churn budget respected" `Quick
            test_resolve_respects_churn_budget;
          Alcotest.test_case "deterministic" `Quick test_resolve_deterministic;
          Alcotest.test_case "reacts to link failure" `Quick
            test_resolve_reacts_to_link_failure;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "export/aggregate round trip + staleness" `Quick
            test_telemetry_roundtrip_and_staleness;
          Alcotest.test_case "update_routes rollout" `Quick test_update_routes_rollout;
        ] );
      ( "loop",
        [
          Alcotest.test_case "closed-loop smoke deterministic" `Quick
            test_closed_loop_smoke_deterministic;
          Alcotest.test_case "steady demand: closed >= static" `Quick
            test_closed_loop_tracks_static_on_steady_demand;
        ] );
      ( "anycast",
        [
          QCheck_alcotest.to_alcotest anycast_routing_valid;
          QCheck_alcotest.to_alcotest anycast_matches_centralized;
          Alcotest.test_case "anycast arm smoke deterministic" `Quick
            test_anycast_smoke_deterministic;
          Alcotest.test_case "offline arms reject ~on_system" `Quick
            test_on_system_rejected_on_offline_arms;
          Alcotest.test_case "closed loop frozen under full GSB outage" `Quick
            test_closed_loop_frozen_under_full_gsb_outage;
        ] );
      ( "placement",
        [
          Alcotest.test_case "placement recovers oracle provisioning" `Quick
            test_placement_recovers_oracle_provisioning;
          Alcotest.test_case "sweep deterministic" `Quick
            test_placement_sweep_deterministic;
        ] );
    ]
