module Rng = Sb_util.Rng
module Zipf = Sb_util.Zipf
module Stats = Sb_util.Stats
module Convex_cost = Sb_util.Convex_cost
module Table = Sb_util.Table

let check_float = Alcotest.(check (float 1e-9))
let check_close msg ~tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* ------------------------------ Rng ------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in [0, 13)" true (v >= 0 && v < 13)
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0. && v < 2.5)
  done

let test_rng_float_mean () =
  let rng = Rng.create 11 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng 1.0
  done;
  check_close "mean near 0.5" ~tolerance:0.01 0.5 (!sum /. float_of_int n)

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  (* Child and parent produce different streams after the split. *)
  let same = ref 0 in
  for _ = 1 to 20 do
    if Rng.bits64 parent = Rng.bits64 child then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 3)

let test_rng_split_stream_deterministic () =
  (* Stream splitting is a pure function of (parent state, index): the
     parent is not advanced, and the same index always yields the same
     child — the lane-seeding contract of the sharded dataplane. *)
  let p1 = Rng.create 77 and p2 = Rng.create 77 in
  for i = 0 to 5 do
    Alcotest.(check int64)
      (Printf.sprintf "stream %d reproducible" i)
      (Rng.bits64 (Rng.split ~stream:i p1))
      (Rng.bits64 (Rng.split ~stream:i p2))
  done;
  Alcotest.(check int64) "parent state untouched by stream splits"
    (Rng.bits64 p1) (Rng.bits64 p2)

let test_rng_split_stream_zero_matches_plain () =
  (* [split ~stream:0] must equal a plain [split] taken at the same
     parent state (plain split then advances the parent). *)
  let a = Rng.create 31 and b = Rng.create 31 in
  Alcotest.(check int64) "stream 0 == plain split"
    (Rng.bits64 (Rng.split ~stream:0 a))
    (Rng.bits64 (Rng.split b))

let test_rng_split_streams_distinct () =
  let parent = Rng.create 9 in
  let firsts = List.init 16 (fun i -> Rng.bits64 (Rng.split ~stream:i parent)) in
  Alcotest.(check int) "16 streams, 16 distinct first draws" 16
    (List.length (List.sort_uniq compare firsts))

let test_rng_split_stream_rejects_negative () =
  let parent = Rng.create 1 in
  Alcotest.check_raises "negative stream"
    (Invalid_argument "Rng.split: stream must be non-negative") (fun () ->
      ignore (Rng.split ~stream:(-1) parent))

let test_rng_copy_snapshot () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_exponential_mean () =
  let rng = Rng.create 21 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 2.0
  done;
  check_close "mean near 1/rate" ~tolerance:0.01 0.5 (!sum /. float_of_int n)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 13 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create 17 in
  let s = Rng.sample_without_replacement rng 10 100 in
  Alcotest.(check int) "10 samples" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 100)) s

let test_rng_sample_full_range () =
  let rng = Rng.create 19 in
  let s = Rng.sample_without_replacement rng 5 5 in
  Alcotest.(check (list int)) "all items" [ 0; 1; 2; 3; 4 ] (List.sort compare s)

let test_rng_weighted_index () =
  let rng = Rng.create 23 in
  let weights = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let i = Rng.weighted_index rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never chosen" 0 counts.(1);
  let ratio = float_of_int counts.(2) /. float_of_int counts.(0) in
  check_close "3:1 ratio" ~tolerance:0.2 3.0 ratio

let test_rng_weighted_index_rejects () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Rng.weighted_index: zero total weight") (fun () ->
      ignore (Rng.weighted_index rng [| 0.; 0. |]))

(* ------------------------------ Zipf ------------------------------ *)

let test_zipf_probabilities_sum () =
  let z = Zipf.create ~n:100 ~s:1.0 in
  let sum = ref 0. in
  for r = 0 to 99 do
    sum := !sum +. Zipf.probability z r
  done;
  check_close "probabilities sum to 1" ~tolerance:1e-9 1.0 !sum

let test_zipf_monotone () =
  let z = Zipf.create ~n:50 ~s:1.2 in
  for r = 1 to 49 do
    Alcotest.(check bool) "decreasing popularity" true
      (Zipf.probability z (r - 1) >= Zipf.probability z r)
  done

let test_zipf_sample_range () =
  let z = Zipf.create ~n:10 ~s:1.0 in
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let r = Zipf.sample z rng in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 10)
  done

let test_zipf_empirical_matches () =
  let n = 20 in
  let z = Zipf.create ~n ~s:1.0 in
  let rng = Rng.create 7 in
  let counts = Array.make n 0 in
  let trials = 200_000 in
  for _ = 1 to trials do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  for r = 0 to 4 do
    let emp = float_of_int counts.(r) /. float_of_int trials in
    check_close (Printf.sprintf "rank %d frequency" r) ~tolerance:0.01
      (Zipf.probability z r) emp
  done

let test_zipf_uniform_when_s_zero () =
  let z = Zipf.create ~n:4 ~s:0. in
  for r = 0 to 3 do
    check_float "uniform" 0.25 (Zipf.probability z r)
  done

(* ------------------------------ Stats ------------------------------ *)

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  check_float "empty mean" 0. (Stats.mean [])

let test_stats_stddev () =
  check_float "constant stddev" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  check_close "known stddev" ~tolerance:1e-9 2.0 (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_stats_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "p0" 1. (Stats.percentile 0. xs);
  check_float "p50" 3. (Stats.percentile 50. xs);
  check_float "p100" 5. (Stats.percentile 100. xs);
  check_float "p25 interpolates" 2. (Stats.percentile 25. xs)

let test_stats_percentile_single () =
  check_float "singleton" 7. (Stats.percentile 99. [ 7. ])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 3.; 1.; 2. ] in
  check_float "min" 1. lo;
  check_float "max" 3. hi

let test_stats_weighted_mean () =
  check_float "weighted" 3.0 (Stats.weighted_mean [ (2., 1.); (4., 1.) ]);
  check_float "weights matter" 3.5 (Stats.weighted_mean [ (2., 1.); (4., 3.) ])

let test_stats_summary () =
  let s = Stats.summarize [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check int) "count" 5 s.Stats.count;
  check_float "mean" 3. s.Stats.mean;
  check_float "p50" 3. s.Stats.p50

(* --------------------------- Convex cost --------------------------- *)

let test_convex_zero () = check_float "cost at 0" 0. (Convex_cost.cost 0.)

let test_convex_increasing () =
  let prev = ref (-1.) in
  List.iter
    (fun u ->
      let c = Convex_cost.cost u in
      Alcotest.(check bool) "increasing" true (c > !prev);
      prev := c)
    [ 0.1; 0.3; 0.5; 0.7; 0.9; 1.0; 1.2 ]

let test_convex_convexity () =
  (* Midpoint rule on a few sample pairs. *)
  List.iter
    (fun (a, b) ->
      let mid = Convex_cost.cost ((a +. b) /. 2.) in
      let avg = (Convex_cost.cost a +. Convex_cost.cost b) /. 2. in
      Alcotest.(check bool) "midpoint below average" true (mid <= avg +. 1e-9))
    [ (0., 1.); (0.2, 0.9); (0.5, 1.3); (0.8, 1.2) ]

let test_convex_slopes () =
  check_float "slope below 1/3" 1. (Convex_cost.marginal_cost 0.1);
  check_float "slope near 1" 500. (Convex_cost.marginal_cost 1.05);
  check_float "slope beyond 1.1" 5000. (Convex_cost.marginal_cost 2.)

let test_convex_piecewise_value () =
  (* cost(2/3) = 1/3 * 1 + 1/3 * 3 = 4/3 *)
  check_close "breakpoint value" ~tolerance:1e-9 (4. /. 3.) (Convex_cost.cost (2. /. 3.))

let test_convex_rejects_negative () =
  Alcotest.check_raises "negative utilization"
    (Invalid_argument "Convex_cost.cost: negative utilization") (fun () ->
      ignore (Convex_cost.cost (-0.1)))

(* ------------------------------ Table ------------------------------ *)

let test_table_render () =
  let t = Table.create ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 1 = "a")

let test_table_arity () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Table.add_row: arity mismatch with header") (fun () ->
      Table.add_row t [ "only one" ])

(* ------------------------------ Heap ------------------------------- *)

module Heap = Sb_util.Heap

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length 0" 0 (Heap.length h);
  Alcotest.(check (option (pair (float 0.) int))) "pop on empty" None (Heap.pop_min h);
  Alcotest.(check (option (pair (float 0.) int))) "peek on empty" None (Heap.peek_min h)

let test_heap_sorted_drain () =
  let h = Heap.create () in
  let rng = Rng.create 31 in
  let n = 500 in
  for v = 0 to n - 1 do
    Heap.push h ~prio:(Rng.float rng 100.) v
  done;
  Alcotest.(check int) "length after pushes" n (Heap.length h);
  let prev = ref neg_infinity in
  let popped = ref 0 in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (p, _) ->
      Alcotest.(check bool) "non-decreasing priorities" true (p >= !prev);
      prev := p;
      incr popped;
      drain ()
  in
  drain ();
  Alcotest.(check int) "all elements popped" n !popped;
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h)

let test_heap_tie_break_on_payload () =
  (* Equal priorities must pop in ascending payload order: Dijkstra's
     determinism (and hence the routing goldens) depends on it. *)
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~prio:1. v) [ 9; 3; 7; 1; 5 ];
  let order = List.init 5 (fun _ -> match Heap.pop_min h with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "ascending payloads" [ 1; 3; 5; 7; 9 ] order

let test_heap_grows_past_capacity () =
  let h = Heap.create ~capacity:2 () in
  for v = 0 to 99 do
    Heap.push h ~prio:(float_of_int (100 - v)) v
  done;
  Alcotest.(check int) "all retained" 100 (Heap.length h);
  Alcotest.(check (option (pair (float 0.) int))) "min is last pushed"
    (Some (1., 99)) (Heap.pop_min h)

let test_heap_peek_does_not_remove () =
  let h = Heap.create () in
  Heap.push h ~prio:2. 1;
  Heap.push h ~prio:1. 2;
  Alcotest.(check (option (pair (float 0.) int))) "peek min" (Some (1., 2)) (Heap.peek_min h);
  Alcotest.(check int) "length unchanged" 2 (Heap.length h)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h ~prio:1. 1;
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h);
  Heap.push h ~prio:3. 7;
  Alcotest.(check (option (pair (float 0.) int))) "usable after clear" (Some (3., 7))
    (Heap.pop_min h)

(* ------------------------------- Par ------------------------------- *)

module Par = Sb_util.Par

let check_par_covers ~domains n =
  let hits = Array.make (max n 1) 0 in
  Par.map_chunks ?domains ~n (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Array.iteri
    (fun i c ->
      if i < n then
        Alcotest.(check int) (Printf.sprintf "index %d covered once" i) 1 c)
    hits

let test_par_covers_sequential () = check_par_covers ~domains:(Some 1) 100
let test_par_covers_parallel () = check_par_covers ~domains:(Some 4) 1000
let test_par_more_domains_than_work () = check_par_covers ~domains:(Some 8) 3
let test_par_empty_range () = check_par_covers ~domains:(Some 4) 0
let test_par_default_domains () =
  Alcotest.(check bool) "at least one domain" true (Par.default_domains () >= 1);
  check_par_covers ~domains:None 257

let test_par_parallel_sum_matches () =
  let n = 10_000 in
  let out = Array.make n 0 in
  Par.map_chunks ~domains:4 ~n (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- i * i
      done);
  let expect = Array.init n (fun i -> i * i) in
  Alcotest.(check bool) "disjoint writes compose" true (out = expect)

(* ------------------------------- Pool ------------------------------ *)

module Pool = Sb_util.Pool

let test_pool_runs_every_worker () =
  let p = Pool.create ~workers:4 () in
  Alcotest.(check int) "size" 4 (Pool.size p);
  let hits = Array.make 4 0 in
  (* Disjoint per-worker writes; repeated runs reuse the same domains. *)
  for _ = 1 to 50 do
    Pool.run p (fun w -> hits.(w) <- hits.(w) + 1)
  done;
  Pool.shutdown p;
  Array.iteri (fun w c -> Alcotest.(check int) (Printf.sprintf "worker %d" w) 50 c) hits

let test_pool_parallel_work_composes () =
  let p = Pool.create ~workers:3 () in
  let n = 9_000 in
  let out = Array.make n 0 in
  Pool.run p (fun w ->
      let chunk = n / 3 in
      for i = w * chunk to ((w + 1) * chunk) - 1 do
        out.(i) <- i * i
      done);
  Pool.shutdown p;
  Alcotest.(check bool) "disjoint writes compose" true
    (out = Array.init n (fun i -> i * i))

let test_pool_propagates_exception () =
  let p = Pool.create ~workers:2 () in
  let raised =
    try
      Pool.run p (fun w -> if w = 1 then failwith "boom");
      false
    with Failure m -> m = "boom"
  in
  Alcotest.(check bool) "worker exception re-raised in caller" true raised;
  (* The pool survives a failed job. *)
  let ok = ref 0 in
  let m = Mutex.create () in
  Pool.run p (fun _ -> Mutex.lock m; incr ok; Mutex.unlock m);
  Pool.shutdown p;
  Alcotest.(check int) "usable after failure" 2 !ok

let test_pool_shutdown_idempotent () =
  let p = Pool.create ~workers:2 () in
  Pool.run p (fun _ -> ());
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      Pool.run p (fun _ -> ()))

let test_spsc_fifo_order () =
  let r = Pool.Spsc.create 8 in
  Alcotest.(check int) "empty pop" (-1) (Pool.Spsc.pop r);
  for i = 0 to 5 do
    Alcotest.(check bool) "push accepted" true (Pool.Spsc.push r i)
  done;
  Alcotest.(check int) "length" 6 (Pool.Spsc.length r);
  for i = 0 to 5 do
    Alcotest.(check int) "FIFO" i (Pool.Spsc.pop r)
  done;
  Alcotest.(check int) "drained" (-1) (Pool.Spsc.pop r)

let test_spsc_full_and_reuse () =
  let r = Pool.Spsc.create 4 in
  Alcotest.(check int) "capacity as given" 4 (Pool.Spsc.capacity r);
  for i = 0 to 3 do
    Alcotest.(check bool) "fills" true (Pool.Spsc.push r (100 + i))
  done;
  Alcotest.(check bool) "full rejects" false (Pool.Spsc.push r 999);
  Alcotest.(check int) "pop head" 100 (Pool.Spsc.pop r);
  Alcotest.(check bool) "slot freed" true (Pool.Spsc.push r 999);
  (* Wrap around the ring a few times. *)
  for i = 0 to 9 do
    ignore (Pool.Spsc.pop r);
    ignore (Pool.Spsc.push r i)
  done;
  Alcotest.(check int) "still full" 4 (Pool.Spsc.length r)

let test_spsc_rounds_capacity () =
  Alcotest.(check int) "rounds up to power of two" 8
    (Pool.Spsc.capacity (Pool.Spsc.create 5));
  Alcotest.check_raises "negative value"
    (Invalid_argument "Spsc.push: negative value") (fun () ->
      ignore (Pool.Spsc.push (Pool.Spsc.create 2) (-3)))

let test_spsc_cross_domain_handoff () =
  (* One producer domain, one consumer domain, every value arrives once
     and in order — the shard dispatch pattern. *)
  let r = Pool.Spsc.create 16 in
  let n = 2_000 in
  let consumer =
    Domain.spawn (fun () ->
        let got = ref 0 and ok = ref true in
        while !got < n do
          let v = Pool.Spsc.pop r in
          if v >= 0 then begin
            if v <> !got then ok := false;
            incr got
          end
          else Domain.cpu_relax ()
        done;
        !ok)
  in
  for i = 0 to n - 1 do
    while not (Pool.Spsc.push r i) do
      Domain.cpu_relax ()
    done
  done;
  Alcotest.(check bool) "ordered, no loss, no duplication" true
    (Domain.join consumer)

(* --------------------------- properties ---------------------------- *)

let prop_heap_matches_sorted =
  QCheck.Test.make ~name:"heap drains as a stable sort" ~count:200
    QCheck.(list_of_size Gen.(0 -- 64) (int_range 0 9))
    (fun prios ->
      let h = Heap.create () in
      List.iteri (fun v p -> Heap.push h ~prio:(float_of_int p) v) prios;
      let rec drain acc =
        match Heap.pop_min h with None -> List.rev acc | Some pv -> drain (pv :: acc)
      in
      let got = drain [] in
      let expect =
        List.mapi (fun v p -> (float_of_int p, v)) prios
        |> List.sort compare
      in
      got = expect)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile within min/max" ~count:500
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.)) (float_bound_inclusive 100.))
    (fun (xs, p) ->
      let xs = List.map Float.abs xs in
      QCheck.assume (xs <> []);
      let v = Stats.percentile p xs in
      let lo, hi = Stats.min_max xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_zipf_cdf_complete =
  QCheck.Test.make ~name:"zipf sample always in range" ~count:200
    QCheck.(pair (int_range 1 200) (float_bound_inclusive 2.5))
    (fun (n, s) ->
      let z = Zipf.create ~n ~s in
      let rng = Rng.create (n + int_of_float (s *. 100.)) in
      let ok = ref true in
      for _ = 1 to 100 do
        let r = Zipf.sample z rng in
        if r < 0 || r >= n then ok := false
      done;
      !ok)

let prop_convex_monotone =
  QCheck.Test.make ~name:"convex cost monotone" ~count:500
    QCheck.(pair (float_bound_inclusive 3.) (float_bound_inclusive 3.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Convex_cost.cost lo <= Convex_cost.cost hi +. 1e-9)

let () =
  Alcotest.run "sb_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int rejects bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "stream split deterministic" `Quick
            test_rng_split_stream_deterministic;
          Alcotest.test_case "stream 0 == plain split" `Quick
            test_rng_split_stream_zero_matches_plain;
          Alcotest.test_case "streams distinct" `Quick test_rng_split_streams_distinct;
          Alcotest.test_case "stream rejects negative" `Quick
            test_rng_split_stream_rejects_negative;
          Alcotest.test_case "copy snapshot" `Quick test_rng_copy_snapshot;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "sample full range" `Quick test_rng_sample_full_range;
          Alcotest.test_case "weighted index" `Quick test_rng_weighted_index;
          Alcotest.test_case "weighted index rejects" `Quick test_rng_weighted_index_rejects;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "probabilities sum" `Quick test_zipf_probabilities_sum;
          Alcotest.test_case "monotone" `Quick test_zipf_monotone;
          Alcotest.test_case "sample range" `Quick test_zipf_sample_range;
          Alcotest.test_case "empirical match" `Slow test_zipf_empirical_matches;
          Alcotest.test_case "uniform at s=0" `Quick test_zipf_uniform_when_s_zero;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile singleton" `Quick test_stats_percentile_single;
          Alcotest.test_case "min_max" `Quick test_stats_min_max;
          Alcotest.test_case "weighted mean" `Quick test_stats_weighted_mean;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      ( "convex_cost",
        [
          Alcotest.test_case "zero" `Quick test_convex_zero;
          Alcotest.test_case "increasing" `Quick test_convex_increasing;
          Alcotest.test_case "convex" `Quick test_convex_convexity;
          Alcotest.test_case "slopes" `Quick test_convex_slopes;
          Alcotest.test_case "piecewise value" `Quick test_convex_piecewise_value;
          Alcotest.test_case "rejects negative" `Quick test_convex_rejects_negative;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
        ] );
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "sorted drain" `Quick test_heap_sorted_drain;
          Alcotest.test_case "tie-break on payload" `Quick test_heap_tie_break_on_payload;
          Alcotest.test_case "grows past capacity" `Quick test_heap_grows_past_capacity;
          Alcotest.test_case "peek non-destructive" `Quick test_heap_peek_does_not_remove;
          Alcotest.test_case "clear" `Quick test_heap_clear;
        ] );
      ( "par",
        [
          Alcotest.test_case "sequential coverage" `Quick test_par_covers_sequential;
          Alcotest.test_case "parallel coverage" `Quick test_par_covers_parallel;
          Alcotest.test_case "more domains than work" `Quick test_par_more_domains_than_work;
          Alcotest.test_case "empty range" `Quick test_par_empty_range;
          Alcotest.test_case "default domains" `Quick test_par_default_domains;
          Alcotest.test_case "disjoint writes compose" `Quick test_par_parallel_sum_matches;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs every worker" `Quick test_pool_runs_every_worker;
          Alcotest.test_case "parallel work composes" `Quick test_pool_parallel_work_composes;
          Alcotest.test_case "propagates exception" `Quick test_pool_propagates_exception;
          Alcotest.test_case "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
          Alcotest.test_case "spsc FIFO order" `Quick test_spsc_fifo_order;
          Alcotest.test_case "spsc full/reuse" `Quick test_spsc_full_and_reuse;
          Alcotest.test_case "spsc capacity rounding" `Quick test_spsc_rounds_capacity;
          Alcotest.test_case "spsc cross-domain handoff" `Quick
            test_spsc_cross_domain_handoff;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_percentile_bounded;
          QCheck_alcotest.to_alcotest prop_zipf_cdf_complete;
          QCheck_alcotest.to_alcotest prop_convex_monotone;
          QCheck_alcotest.to_alcotest prop_heap_matches_sorted;
        ] );
    ]
