(* sb_chaos: deterministic fault injection + whole-system invariants.

   The headline property: 200+ randomly generated fault schedules run
   against the standard six-site deployment with zero invariant
   violations. On failure qcheck shrinks through [Schedule.shrink] and
   prints the minimal failing schedule (its seed replays it bit-identically
   via `switchboard_cli chaos --seed N`). *)

module Schedule = Sb_chaos.Schedule
module Harness = Sb_chaos.Harness
module Engine = Sb_sim.Engine
module System = Sb_ctrl.System
module Fabric = Sb_dataplane.Fabric
open Sb_ctrl.Types

(* ------------------- schedule generation / replay ------------------- *)

let test_generate_deterministic () =
  let a = Schedule.generate ~seed:17 ~horizon:20. ~num_sites:6 in
  let b = Schedule.generate ~seed:17 ~horizon:20. ~num_sites:6 in
  Alcotest.(check string) "same schedule" (Schedule.to_string a) (Schedule.to_string b);
  let c = Schedule.generate ~seed:18 ~horizon:20. ~num_sites:6 in
  if Schedule.to_string a = Schedule.to_string c then
    Alcotest.fail "different seeds should give different schedules"

let test_generate_death_windows_disjoint () =
  for seed = 1 to 100 do
    let s = Schedule.generate ~seed ~horizon:20. ~num_sites:6 in
    let deaths = List.filter Schedule.is_death s.Schedule.faults in
    List.iteri
      (fun i f ->
        List.iteri
          (fun j g ->
            if i < j && Schedule.overlaps f g then
              Alcotest.failf "seed %d: overlapping death windows:@.%s" seed
                (Schedule.to_string s))
          deaths)
      deaths
  done

let test_shrink_strictly_smaller () =
  let s = Schedule.generate ~seed:3 ~horizon:20. ~num_sites:6 in
  let size (t : Schedule.t) =
    (* Every shrink step removes a fault, halves a window, or halves a
       probability — each strictly decreases this measure. *)
    List.fold_left
      (fun acc f ->
        let start, stop = Schedule.window f in
        let prob =
          match f with
          | Schedule.Bus_loss { prob; _ }
          | Schedule.Bus_delay { prob; _ }
          | Schedule.Telemetry_drop { prob; _ } -> prob
          | _ -> 0.
        in
        acc +. 1. +. (stop -. start) +. prob)
      0. t.Schedule.faults
  in
  let candidates = Schedule.shrink s in
  if candidates = [] then Alcotest.fail "non-empty schedule must shrink";
  List.iter
    (fun c ->
      if size c >= size s then
        Alcotest.failf "shrink candidate not smaller:@.%s" (Schedule.to_string c))
    candidates

let test_replay_identical () =
  let r1 = Harness.run_seed 42 in
  let r2 = Harness.run_seed 42 in
  Alcotest.(check int) "same event count" r1.Harness.events r2.Harness.events;
  Alcotest.(check int) "same violation count"
    (List.length r1.Harness.violations)
    (List.length r2.Harness.violations);
  Alcotest.(check bool) "both quiesced" r1.Harness.completed r2.Harness.completed

(* -------------------- the qcheck schedule search -------------------- *)

let schedule_arb =
  QCheck.make
    ~print:Schedule.to_string
    ~shrink:(fun s yield -> List.iter yield (Schedule.shrink s))
    QCheck.Gen.(
      map
        (fun seed ->
          Schedule.generate ~seed ~horizon:Harness.horizon
            ~num_sites:Harness.num_sites)
        (int_range 1 1_000_000))

let prop_no_violations =
  QCheck.Test.make ~name:"random fault schedules: no invariant violations"
    ~count:200 schedule_arb (fun sched ->
      let r = Harness.run sched in
      if r.Harness.violations <> [] then
        QCheck.Test.fail_reportf "%a" Harness.pp_result r
      else true)

(* --------------- regression: relay loop (fixed bug) ----------------- *)

(* Found by the schedule search (and reproducible with zero faults): when
   one site is the receiver of one route and the sender of another for
   the same stage, its merged stage rule offered remote forwarders to
   packets that had already been relayed once. Under the Replicated flow
   store the second relay hop collided with the first in the role-keyed
   DHT and the packet looped until TTL exhaustion. The receiver-side
   rule ([Fabric.install_rx_rule]) pins relayed packets to local
   delivery; this must hold for every connection. *)
let test_no_relay_loop_when_site_is_sender_and_receiver () =
  let delay i j = if i = j then 0. else 0.02 in
  let sys =
    System.create ~seed:5 ~flow_store:(Fabric.Replicated 2) ~num_sites:4 ~delay
      ~gsb_site:0 ()
  in
  List.iter
    (fun (vnf, site) -> System.deploy_vnf sys ~vnf ~site ~capacity:100. ~instances:2)
    [ (0, 1); (0, 2); (1, 2); (1, 3) ];
  System.register_edge sys ~site:0 ~attachment:"in";
  System.register_edge sys ~site:3 ~attachment:"out";
  (* Site 2 receives stage 1 of route A (vnf1 there) and sends stage 1 of
     route B (vnf0 there, vnf1 at site 3). *)
  System.set_route_policy sys (fun _ ~exclude:_ ->
      Some
        [
          { element_sites = [| 0; 1; 2; 3 |]; weight = 0.5 };
          { element_sites = [| 0; 2; 3; 3 |]; weight = 0.5 };
        ]);
  let chain =
    System.request_chain sys
      {
        spec_name = "loop-regression";
        ingress_attachment = "in";
        egress_attachment = "out";
        vnfs = [ 0; 1 ];
        traffic = 4.;
      }
  in
  Engine.run (System.engine sys);
  Alcotest.(check int) "routes committed" 2
    (List.length (System.chain_routes sys ~chain));
  let rng = Sb_util.Rng.create 99 in
  for _ = 1 to 60 do
    let tu = Sb_dataplane.Packet.random_tuple rng in
    match System.probe_chain sys ~chain tu with
    | Ok trace ->
      Alcotest.(check (list int))
        "conformant" [ 0; 1 ]
        (Fabric.vnfs_in_trace (System.fabric sys) trace)
    | Error e -> Alcotest.failf "probe failed: %a" Fabric.pp_error e
  done

(* The standard deployment and schedules over the sharded data plane:
   the lane count must be invisible to every invariant — probes route to
   the owning lane, counters and flow state aggregate across lanes. *)
let test_sharded_fabric_no_violations () =
  List.iter
    (fun lanes ->
      List.iter
        (fun seed ->
          let r = Harness.run_seed ~lanes seed in
          if r.Harness.violations <> [] then
            Alcotest.failf "lanes=%d seed %d: %a" lanes seed Harness.pp_result r;
          if not r.Harness.completed then
            Alcotest.failf "lanes=%d seed %d: budget exhausted" lanes seed)
        [ 7; 42 ])
    [ 2; 4 ]

(* ---------- decentralized arm: degradation under GSB loss ---------- *)

module Loop = Sb_adapt.Loop
module Scenario = Sb_adapt.Scenario
module Invariant = Sb_chaos.Invariant
module Inject = Sb_chaos.Inject
module Model = Sb_core.Model

(* The controller-outage acceptance scenario (DESIGN.md section 15): the
   sweep's own 25-site diurnal scenario — including the sacrificial site
   going dark one epoch into the window — with a harsher fault mix than
   the bench sweep arms: the Global Switchboard dies at a quarter of the
   run and never comes back, and the wide-area bus drops 40% of
   loss-tolerant copies (a partial partition of the advert flood) for the
   same window. Every threshold below is pinned against this exact seeded
   scenario; a regression in the agents' staleness handling or the spill
   chooser moves the measured means and trips them. *)

let outage_cfg = Scenario.smoke_config

let outage_schedule () =
  let cfg = outage_cfg in
  let sc = Scenario.outage_scenario cfg in
  let num_sites = Model.num_sites sc.Loop.sc_model in
  (* Past the last control tick, so the GSB stays dead to the end. *)
  let horizon = (float_of_int cfg.Scenario.ticks *. cfg.Scenario.epoch_len) +. 1. in
  let start =
    float_of_int (Scenario.outage_start_epoch cfg) *. cfg.Scenario.epoch_len
  in
  Schedule.of_faults ~seed:cfg.Scenario.seed ~horizon ~num_sites
    [
      Schedule.Gsb_failover { start; stop = horizon };
      Schedule.Bus_loss { start; stop = horizon; prob = 0.4 };
    ]

(* Run one live arm with the outage armed; optionally with the invariant
   checker probing every epoch and monitoring single-copy WAN delivery. *)
let run_armed ?(lanes = 1) ?(invariants = false) arm =
  let cfg = outage_cfg in
  let sc = Scenario.outage_scenario cfg in
  let params = { Loop.default_params with Loop.seed = cfg.Scenario.seed; lanes } in
  let sched = outage_schedule () in
  let rng = Sb_util.Rng.create (cfg.Scenario.seed + 101) in
  let checker = ref None in
  let on_system sys =
    if invariants then begin
      let iv =
        Invariant.create ~sys ~num_sites:(Model.num_sites sc.Loop.sc_model)
          ~seed:cfg.Scenario.seed
      in
      List.iter
        (fun chain -> Invariant.register_chain iv ~chain ~tuples:2)
        (System.chain_ids sys);
      let eng = System.engine sys in
      let t0 = Engine.now eng in
      for e = 0 to cfg.Scenario.ticks - 1 do
        ignore
          (Engine.schedule_at eng
             ~time:(t0 +. ((float_of_int e +. 0.5) *. cfg.Scenario.epoch_len))
             (fun () -> Invariant.check_epoch iv))
      done;
      checker := Some iv;
      Inject.arm ~sys ~observe:(Invariant.observe_wan iv) ~rng sched
    end
    else Inject.arm ~sys ~rng sched
  in
  let r = Loop.run ~params ~on_system sc arm in
  (r, match !checker with Some iv -> Invariant.violations iv | None -> [])

let mean_supported lo hi (r : Loop.run_result) =
  let xs =
    List.filter_map
      (fun (e : Loop.epoch_report) ->
        if e.Loop.ep_epoch >= lo && e.Loop.ep_epoch < hi then Some e.Loop.ep_supported
        else None)
      r.Loop.epochs
  in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let test_anycast_degrades_gracefully_under_gsb_loss () =
  let cfg = outage_cfg in
  let sc = Scenario.outage_scenario cfg in
  let params = { Loop.default_params with Loop.seed = cfg.Scenario.seed } in
  let start_e = Scenario.outage_start_epoch cfg in
  let epochs = cfg.Scenario.ticks in
  let pre r = mean_supported 0 start_e r in
  let during r = mean_supported start_e epochs r in
  let oracle = Loop.run ~params sc Loop.Oracle in
  let static = Loop.run ~params sc Loop.Static in
  let closed_ok = Loop.run ~params sc Loop.Closed_loop in
  let closed, _ = run_armed Loop.Closed_loop in
  let anycast, _ = run_armed Loop.Anycast_dist in
  (* Pre-outage the centralized loop is healthy: within 20% of the
     per-epoch-resolving oracle after a single control tick (measured
     0.853 — the pre window is only ticks/4 epochs, so the loop has had
     exactly one chance to react to the drift). *)
  Alcotest.(check bool) "closed pre-outage >= 0.8 oracle" true
    (pre closed >= 0.8 *. pre oracle);
  (* ... and within 5% of the decentralized arm before the controller
     dies (the full-run zero-outage ordering closed > anycast is pinned
     at both scales by the anycast golden / BENCH_anycast headline). *)
  Alcotest.(check bool) "closed pre-outage >= 0.95 anycast" true
    (pre closed >= 0.95 *. pre anycast);
  (* The dead-controller closed loop stalls: no better than its own
     fault-free run, and decisively overtaken during the loss (measured
     1.226x / 1.199x over frozen-closed / static). *)
  Alcotest.(check bool) "dead-GSB closed <= fault-free closed" true
    (during closed <= during closed_ok +. 1e-9);
  Alcotest.(check bool) "anycast >= 1.1x closed during GSB loss" true
    (during anycast >= 1.1 *. during closed);
  Alcotest.(check bool) "anycast >= 1.1x static during GSB loss" true
    (during anycast >= 1.1 *. during static);
  (* Graceful degradation, pinned: through the dead controller, the lossy
     advert flood and the dead site, the agents retain at least 65% of
     their own pre-outage satisfied demand (measured 0.682; the dead
     site's endpoint demand is unreachable for every arm, so full
     retention is not attainable). *)
  Alcotest.(check bool) "anycast retains >= 0.65 of pre-outage demand" true
    (during anycast >= 0.65 *. pre anycast)

(* Safety under the mixed fault load, and lane-independence: the epoch
   probes must stay conformant/affine/symmetric while agents re-point
   rules mid-flight, at 1 RSS lane and at 4; and the arm's scores must be
   identical across lane counts (sharding is invisible to the control
   logic). The strict quiesce check does not apply — the agents install
   outside 2PC by design, so committed-load accounting diverges. *)
let test_anycast_invariants_lane_independent () =
  let r1, v1 = run_armed ~lanes:1 ~invariants:true Loop.Anycast_dist in
  let r4, v4 = run_armed ~lanes:4 ~invariants:true Loop.Anycast_dist in
  (match v1 @ v4 with
  | [] -> ()
  | vs ->
    Alcotest.failf "invariant violations under anycast: %s"
      (String.concat "; "
         (List.map (fun (v : Invariant.violation) -> v.Invariant.inv) vs)));
  List.iter2
    (fun (a : Loop.epoch_report) (b : Loop.epoch_report) ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "epoch %d supported lane-independent" a.Loop.ep_epoch)
        a.Loop.ep_supported b.Loop.ep_supported;
      Alcotest.(check int) "re-points lane-independent" a.Loop.ep_rerouted
        b.Loop.ep_rerouted)
    r1.Loop.epochs r4.Loop.epochs

let () =
  Alcotest.run "sb_chaos"
    [
      ( "schedule",
        [
          Alcotest.test_case "generate deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "death windows disjoint" `Quick
            test_generate_death_windows_disjoint;
          Alcotest.test_case "shrink strictly smaller" `Quick
            test_shrink_strictly_smaller;
        ] );
      ( "harness",
        [
          Alcotest.test_case "seeded replay identical" `Quick test_replay_identical;
          Alcotest.test_case "relay loop regression (mixed-role site)" `Quick
            test_no_relay_loop_when_site_is_sender_and_receiver;
          Alcotest.test_case "sharded fabric: schedules stay violation-free" `Quick
            test_sharded_fabric_no_violations;
        ] );
      ("search", [ QCheck_alcotest.to_alcotest prop_no_violations ]);
      ( "outage",
        [
          Alcotest.test_case "anycast degrades gracefully under GSB loss" `Quick
            test_anycast_degrades_gracefully_under_gsb_loss;
          Alcotest.test_case "anycast invariants hold, lane-independent" `Quick
            test_anycast_invariants_lane_independent;
        ] );
    ]
