(* sb_chaos: deterministic fault injection + whole-system invariants.

   The headline property: 200+ randomly generated fault schedules run
   against the standard six-site deployment with zero invariant
   violations. On failure qcheck shrinks through [Schedule.shrink] and
   prints the minimal failing schedule (its seed replays it bit-identically
   via `switchboard_cli chaos --seed N`). *)

module Schedule = Sb_chaos.Schedule
module Harness = Sb_chaos.Harness
module Engine = Sb_sim.Engine
module System = Sb_ctrl.System
module Fabric = Sb_dataplane.Fabric
open Sb_ctrl.Types

(* ------------------- schedule generation / replay ------------------- *)

let test_generate_deterministic () =
  let a = Schedule.generate ~seed:17 ~horizon:20. ~num_sites:6 in
  let b = Schedule.generate ~seed:17 ~horizon:20. ~num_sites:6 in
  Alcotest.(check string) "same schedule" (Schedule.to_string a) (Schedule.to_string b);
  let c = Schedule.generate ~seed:18 ~horizon:20. ~num_sites:6 in
  if Schedule.to_string a = Schedule.to_string c then
    Alcotest.fail "different seeds should give different schedules"

let test_generate_death_windows_disjoint () =
  for seed = 1 to 100 do
    let s = Schedule.generate ~seed ~horizon:20. ~num_sites:6 in
    let deaths = List.filter Schedule.is_death s.Schedule.faults in
    List.iteri
      (fun i f ->
        List.iteri
          (fun j g ->
            if i < j && Schedule.overlaps f g then
              Alcotest.failf "seed %d: overlapping death windows:@.%s" seed
                (Schedule.to_string s))
          deaths)
      deaths
  done

let test_shrink_strictly_smaller () =
  let s = Schedule.generate ~seed:3 ~horizon:20. ~num_sites:6 in
  let size (t : Schedule.t) =
    (* Every shrink step removes a fault, halves a window, or halves a
       probability — each strictly decreases this measure. *)
    List.fold_left
      (fun acc f ->
        let start, stop = Schedule.window f in
        let prob =
          match f with
          | Schedule.Bus_loss { prob; _ }
          | Schedule.Bus_delay { prob; _ }
          | Schedule.Telemetry_drop { prob; _ } -> prob
          | _ -> 0.
        in
        acc +. 1. +. (stop -. start) +. prob)
      0. t.Schedule.faults
  in
  let candidates = Schedule.shrink s in
  if candidates = [] then Alcotest.fail "non-empty schedule must shrink";
  List.iter
    (fun c ->
      if size c >= size s then
        Alcotest.failf "shrink candidate not smaller:@.%s" (Schedule.to_string c))
    candidates

let test_replay_identical () =
  let r1 = Harness.run_seed 42 in
  let r2 = Harness.run_seed 42 in
  Alcotest.(check int) "same event count" r1.Harness.events r2.Harness.events;
  Alcotest.(check int) "same violation count"
    (List.length r1.Harness.violations)
    (List.length r2.Harness.violations);
  Alcotest.(check bool) "both quiesced" r1.Harness.completed r2.Harness.completed

(* -------------------- the qcheck schedule search -------------------- *)

let schedule_arb =
  QCheck.make
    ~print:Schedule.to_string
    ~shrink:(fun s yield -> List.iter yield (Schedule.shrink s))
    QCheck.Gen.(
      map
        (fun seed ->
          Schedule.generate ~seed ~horizon:Harness.horizon
            ~num_sites:Harness.num_sites)
        (int_range 1 1_000_000))

let prop_no_violations =
  QCheck.Test.make ~name:"random fault schedules: no invariant violations"
    ~count:200 schedule_arb (fun sched ->
      let r = Harness.run sched in
      if r.Harness.violations <> [] then
        QCheck.Test.fail_reportf "%a" Harness.pp_result r
      else true)

(* --------------- regression: relay loop (fixed bug) ----------------- *)

(* Found by the schedule search (and reproducible with zero faults): when
   one site is the receiver of one route and the sender of another for
   the same stage, its merged stage rule offered remote forwarders to
   packets that had already been relayed once. Under the Replicated flow
   store the second relay hop collided with the first in the role-keyed
   DHT and the packet looped until TTL exhaustion. The receiver-side
   rule ([Fabric.install_rx_rule]) pins relayed packets to local
   delivery; this must hold for every connection. *)
let test_no_relay_loop_when_site_is_sender_and_receiver () =
  let delay i j = if i = j then 0. else 0.02 in
  let sys =
    System.create ~seed:5 ~flow_store:(Fabric.Replicated 2) ~num_sites:4 ~delay
      ~gsb_site:0 ()
  in
  List.iter
    (fun (vnf, site) -> System.deploy_vnf sys ~vnf ~site ~capacity:100. ~instances:2)
    [ (0, 1); (0, 2); (1, 2); (1, 3) ];
  System.register_edge sys ~site:0 ~attachment:"in";
  System.register_edge sys ~site:3 ~attachment:"out";
  (* Site 2 receives stage 1 of route A (vnf1 there) and sends stage 1 of
     route B (vnf0 there, vnf1 at site 3). *)
  System.set_route_policy sys (fun _ ~exclude:_ ->
      Some
        [
          { element_sites = [| 0; 1; 2; 3 |]; weight = 0.5 };
          { element_sites = [| 0; 2; 3; 3 |]; weight = 0.5 };
        ]);
  let chain =
    System.request_chain sys
      {
        spec_name = "loop-regression";
        ingress_attachment = "in";
        egress_attachment = "out";
        vnfs = [ 0; 1 ];
        traffic = 4.;
      }
  in
  Engine.run (System.engine sys);
  Alcotest.(check int) "routes committed" 2
    (List.length (System.chain_routes sys ~chain));
  let rng = Sb_util.Rng.create 99 in
  for _ = 1 to 60 do
    let tu = Sb_dataplane.Packet.random_tuple rng in
    match System.probe_chain sys ~chain tu with
    | Ok trace ->
      Alcotest.(check (list int))
        "conformant" [ 0; 1 ]
        (Fabric.vnfs_in_trace (System.fabric sys) trace)
    | Error e -> Alcotest.failf "probe failed: %a" Fabric.pp_error e
  done

(* The standard deployment and schedules over the sharded data plane:
   the lane count must be invisible to every invariant — probes route to
   the owning lane, counters and flow state aggregate across lanes. *)
let test_sharded_fabric_no_violations () =
  List.iter
    (fun lanes ->
      List.iter
        (fun seed ->
          let r = Harness.run_seed ~lanes seed in
          if r.Harness.violations <> [] then
            Alcotest.failf "lanes=%d seed %d: %a" lanes seed Harness.pp_result r;
          if not r.Harness.completed then
            Alcotest.failf "lanes=%d seed %d: budget exhausted" lanes seed)
        [ 7; 42 ])
    [ 2; 4 ]

let () =
  Alcotest.run "sb_chaos"
    [
      ( "schedule",
        [
          Alcotest.test_case "generate deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "death windows disjoint" `Quick
            test_generate_death_windows_disjoint;
          Alcotest.test_case "shrink strictly smaller" `Quick
            test_shrink_strictly_smaller;
        ] );
      ( "harness",
        [
          Alcotest.test_case "seeded replay identical" `Quick test_replay_identical;
          Alcotest.test_case "relay loop regression (mixed-role site)" `Quick
            test_no_relay_loop_when_site_is_sender_and_receiver;
          Alcotest.test_case "sharded fabric: schedules stay violation-free" `Quick
            test_sharded_fabric_no_violations;
        ] );
      ("search", [ QCheck_alcotest.to_alcotest prop_no_violations ]);
    ]
