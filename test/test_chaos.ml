(* sb_chaos: deterministic fault injection + whole-system invariants.

   The headline property: 200+ randomly generated fault schedules run
   against the standard six-site deployment with zero invariant
   violations. On failure qcheck shrinks through [Schedule.shrink] and
   prints the minimal failing schedule (its seed replays it bit-identically
   via `switchboard_cli chaos --seed N`). *)

module Schedule = Sb_chaos.Schedule
module Harness = Sb_chaos.Harness
module Engine = Sb_sim.Engine
module System = Sb_ctrl.System
module Fabric = Sb_dataplane.Fabric
open Sb_ctrl.Types

(* ------------------- schedule generation / replay ------------------- *)

let test_generate_deterministic () =
  let a = Schedule.generate ~seed:17 ~horizon:20. ~num_sites:6 in
  let b = Schedule.generate ~seed:17 ~horizon:20. ~num_sites:6 in
  Alcotest.(check string) "same schedule" (Schedule.to_string a) (Schedule.to_string b);
  let c = Schedule.generate ~seed:18 ~horizon:20. ~num_sites:6 in
  if Schedule.to_string a = Schedule.to_string c then
    Alcotest.fail "different seeds should give different schedules"

let test_generate_death_windows_disjoint () =
  for seed = 1 to 100 do
    let s = Schedule.generate ~seed ~horizon:20. ~num_sites:6 in
    let deaths = List.filter Schedule.is_death s.Schedule.faults in
    List.iteri
      (fun i f ->
        List.iteri
          (fun j g ->
            if i < j && Schedule.overlaps f g then
              Alcotest.failf "seed %d: overlapping death windows:@.%s" seed
                (Schedule.to_string s))
          deaths)
      deaths
  done

let test_shrink_strictly_smaller () =
  let s = Schedule.generate ~seed:3 ~horizon:20. ~num_sites:6 in
  let size (t : Schedule.t) =
    (* Every shrink step removes a fault, halves a window, or halves a
       probability — each strictly decreases this measure. *)
    List.fold_left
      (fun acc f ->
        let start, stop = Schedule.window f in
        let prob =
          match f with
          | Schedule.Bus_loss { prob; _ }
          | Schedule.Bus_delay { prob; _ }
          | Schedule.Telemetry_drop { prob; _ } -> prob
          | _ -> 0.
        in
        acc +. 1. +. (stop -. start) +. prob)
      0. t.Schedule.faults
  in
  let candidates = Schedule.shrink s in
  if candidates = [] then Alcotest.fail "non-empty schedule must shrink";
  List.iter
    (fun c ->
      if size c >= size s then
        Alcotest.failf "shrink candidate not smaller:@.%s" (Schedule.to_string c))
    candidates

let test_replay_identical () =
  let r1 = Harness.run_seed 42 in
  let r2 = Harness.run_seed 42 in
  Alcotest.(check int) "same event count" r1.Harness.events r2.Harness.events;
  Alcotest.(check int) "same violation count"
    (List.length r1.Harness.violations)
    (List.length r2.Harness.violations);
  Alcotest.(check bool) "both quiesced" r1.Harness.completed r2.Harness.completed

(* -------------------- the qcheck schedule search -------------------- *)

let schedule_arb =
  QCheck.make
    ~print:Schedule.to_string
    ~shrink:(fun s yield -> List.iter yield (Schedule.shrink s))
    QCheck.Gen.(
      map
        (fun seed ->
          Schedule.generate ~seed ~horizon:Harness.horizon
            ~num_sites:Harness.num_sites)
        (int_range 1 1_000_000))

let prop_no_violations =
  QCheck.Test.make ~name:"random fault schedules: no invariant violations"
    ~count:200 schedule_arb (fun sched ->
      let r = Harness.run sched in
      if r.Harness.violations <> [] then
        QCheck.Test.fail_reportf "%a" Harness.pp_result r
      else true)

(* --------------- regression: relay loop (fixed bug) ----------------- *)

(* Found by the schedule search (and reproducible with zero faults): when
   one site is the receiver of one route and the sender of another for
   the same stage, its merged stage rule offered remote forwarders to
   packets that had already been relayed once. Under the Replicated flow
   store the second relay hop collided with the first in the role-keyed
   DHT and the packet looped until TTL exhaustion. The receiver-side
   rule ([Fabric.install_rx_rule]) pins relayed packets to local
   delivery; this must hold for every connection. *)
let test_no_relay_loop_when_site_is_sender_and_receiver () =
  let delay i j = if i = j then 0. else 0.02 in
  let sys =
    System.create ~seed:5 ~flow_store:(Fabric.Replicated 2) ~num_sites:4 ~delay
      ~gsb_site:0 ()
  in
  List.iter
    (fun (vnf, site) -> System.deploy_vnf sys ~vnf ~site ~capacity:100. ~instances:2)
    [ (0, 1); (0, 2); (1, 2); (1, 3) ];
  System.register_edge sys ~site:0 ~attachment:"in";
  System.register_edge sys ~site:3 ~attachment:"out";
  (* Site 2 receives stage 1 of route A (vnf1 there) and sends stage 1 of
     route B (vnf0 there, vnf1 at site 3). *)
  System.set_route_policy sys (fun _ ~exclude:_ ->
      Some
        [
          { element_sites = [| 0; 1; 2; 3 |]; weight = 0.5 };
          { element_sites = [| 0; 2; 3; 3 |]; weight = 0.5 };
        ]);
  let chain =
    System.request_chain sys
      {
        spec_name = "loop-regression";
        ingress_attachment = "in";
        egress_attachment = "out";
        vnfs = [ 0; 1 ];
        traffic = 4.;
      }
  in
  Engine.run (System.engine sys);
  Alcotest.(check int) "routes committed" 2
    (List.length (System.chain_routes sys ~chain));
  let rng = Sb_util.Rng.create 99 in
  for _ = 1 to 60 do
    let tu = Sb_dataplane.Packet.random_tuple rng in
    match System.probe_chain sys ~chain tu with
    | Ok trace ->
      Alcotest.(check (list int))
        "conformant" [ 0; 1 ]
        (Fabric.vnfs_in_trace (System.fabric sys) trace)
    | Error e -> Alcotest.failf "probe failed: %a" Fabric.pp_error e
  done

(* The standard deployment and schedules over the sharded data plane:
   the lane count must be invisible to every invariant — probes route to
   the owning lane, counters and flow state aggregate across lanes. *)
let test_sharded_fabric_no_violations () =
  List.iter
    (fun lanes ->
      List.iter
        (fun seed ->
          let r = Harness.run_seed ~lanes seed in
          if r.Harness.violations <> [] then
            Alcotest.failf "lanes=%d seed %d: %a" lanes seed Harness.pp_result r;
          if not r.Harness.completed then
            Alcotest.failf "lanes=%d seed %d: budget exhausted" lanes seed)
        [ 7; 42 ])
    [ 2; 4 ]

(* ---------- decentralized arm: degradation under GSB loss ---------- *)

module Loop = Sb_adapt.Loop
module Scenario = Sb_adapt.Scenario
module Invariant = Sb_chaos.Invariant
module Inject = Sb_chaos.Inject
module Model = Sb_core.Model

(* The controller-outage acceptance scenario (DESIGN.md section 15): the
   sweep's own 25-site diurnal scenario — including the sacrificial site
   going dark one epoch into the window — with a harsher fault mix than
   the bench sweep arms: the Global Switchboard dies at a quarter of the
   run and never comes back, and the wide-area bus drops 40% of
   loss-tolerant copies (a partial partition of the advert flood) for the
   same window. Every threshold below is pinned against this exact seeded
   scenario; a regression in the agents' staleness handling or the spill
   chooser moves the measured means and trips them. *)

let outage_cfg = Scenario.smoke_config

let outage_schedule () =
  let cfg = outage_cfg in
  let sc = Scenario.outage_scenario cfg in
  let num_sites = Model.num_sites sc.Loop.sc_model in
  (* Past the last control tick, so the GSB stays dead to the end. *)
  let horizon = (float_of_int cfg.Scenario.ticks *. cfg.Scenario.epoch_len) +. 1. in
  let start =
    float_of_int (Scenario.outage_start_epoch cfg) *. cfg.Scenario.epoch_len
  in
  Schedule.of_faults ~seed:cfg.Scenario.seed ~horizon ~num_sites
    [
      Schedule.Gsb_failover { start; stop = horizon };
      Schedule.Bus_loss { start; stop = horizon; prob = 0.4 };
    ]

(* Run one live arm with the outage armed; optionally with the invariant
   checker probing every epoch and monitoring single-copy WAN delivery. *)
let run_armed ?(lanes = 1) ?(invariants = false) arm =
  let cfg = outage_cfg in
  let sc = Scenario.outage_scenario cfg in
  let params = { Loop.default_params with Loop.seed = cfg.Scenario.seed; lanes } in
  let sched = outage_schedule () in
  let rng = Sb_util.Rng.create (cfg.Scenario.seed + 101) in
  let checker = ref None in
  let on_system sys =
    if invariants then begin
      let iv =
        Invariant.create ~sys ~num_sites:(Model.num_sites sc.Loop.sc_model)
          ~seed:cfg.Scenario.seed
      in
      List.iter
        (fun chain -> Invariant.register_chain iv ~chain ~tuples:2)
        (System.chain_ids sys);
      let eng = System.engine sys in
      let t0 = Engine.now eng in
      for e = 0 to cfg.Scenario.ticks - 1 do
        ignore
          (Engine.schedule_at eng
             ~time:(t0 +. ((float_of_int e +. 0.5) *. cfg.Scenario.epoch_len))
             (fun () -> Invariant.check_epoch iv))
      done;
      checker := Some iv;
      Inject.arm ~sys ~observe:(Invariant.observe_wan iv) ~rng sched
    end
    else Inject.arm ~sys ~rng sched
  in
  let r = Loop.run ~params ~on_system sc arm in
  (r, match !checker with Some iv -> Invariant.violations iv | None -> [])

let mean_supported lo hi (r : Loop.run_result) =
  let xs =
    List.filter_map
      (fun (e : Loop.epoch_report) ->
        if e.Loop.ep_epoch >= lo && e.Loop.ep_epoch < hi then Some e.Loop.ep_supported
        else None)
      r.Loop.epochs
  in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let test_anycast_degrades_gracefully_under_gsb_loss () =
  let cfg = outage_cfg in
  let sc = Scenario.outage_scenario cfg in
  let params = { Loop.default_params with Loop.seed = cfg.Scenario.seed } in
  let start_e = Scenario.outage_start_epoch cfg in
  let epochs = cfg.Scenario.ticks in
  let pre r = mean_supported 0 start_e r in
  let during r = mean_supported start_e epochs r in
  let oracle = Loop.run ~params sc Loop.Oracle in
  let static = Loop.run ~params sc Loop.Static in
  let closed_ok = Loop.run ~params sc Loop.Closed_loop in
  let closed, _ = run_armed Loop.Closed_loop in
  let anycast, _ = run_armed Loop.Anycast_dist in
  (* Pre-outage the centralized loop is healthy: within 20% of the
     per-epoch-resolving oracle after a single control tick (measured
     0.853 — the pre window is only ticks/4 epochs, so the loop has had
     exactly one chance to react to the drift). *)
  Alcotest.(check bool) "closed pre-outage >= 0.8 oracle" true
    (pre closed >= 0.8 *. pre oracle);
  (* ... and within 5% of the decentralized arm before the controller
     dies (the full-run zero-outage ordering closed > anycast is pinned
     at both scales by the anycast golden / BENCH_anycast headline). *)
  Alcotest.(check bool) "closed pre-outage >= 0.95 anycast" true
    (pre closed >= 0.95 *. pre anycast);
  (* The dead-controller closed loop stalls: no better than its own
     fault-free run, and decisively overtaken during the loss (measured
     1.226x / 1.199x over frozen-closed / static). *)
  Alcotest.(check bool) "dead-GSB closed <= fault-free closed" true
    (during closed <= during closed_ok +. 1e-9);
  Alcotest.(check bool) "anycast >= 1.1x closed during GSB loss" true
    (during anycast >= 1.1 *. during closed);
  Alcotest.(check bool) "anycast >= 1.1x static during GSB loss" true
    (during anycast >= 1.1 *. during static);
  (* Graceful degradation, pinned: through the dead controller, the lossy
     advert flood and the dead site, the agents retain at least 65% of
     their own pre-outage satisfied demand (measured 0.682; the dead
     site's endpoint demand is unreachable for every arm, so full
     retention is not attainable). *)
  Alcotest.(check bool) "anycast retains >= 0.65 of pre-outage demand" true
    (during anycast >= 0.65 *. pre anycast)

(* Safety under the mixed fault load, and lane-independence: the epoch
   probes must stay conformant/affine/symmetric while agents re-point
   rules mid-flight, at 1 RSS lane and at 4; and the arm's scores must be
   identical across lane counts (sharding is invisible to the control
   logic). The strict quiesce check does not apply — the agents install
   outside 2PC by design, so committed-load accounting diverges. *)
let test_anycast_invariants_lane_independent () =
  let r1, v1 = run_armed ~lanes:1 ~invariants:true Loop.Anycast_dist in
  let r4, v4 = run_armed ~lanes:4 ~invariants:true Loop.Anycast_dist in
  (match v1 @ v4 with
  | [] -> ()
  | vs ->
    Alcotest.failf "invariant violations under anycast: %s"
      (String.concat "; "
         (List.map (fun (v : Invariant.violation) -> v.Invariant.inv) vs)));
  List.iter2
    (fun (a : Loop.epoch_report) (b : Loop.epoch_report) ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "epoch %d supported lane-independent" a.Loop.ep_epoch)
        a.Loop.ep_supported b.Loop.ep_supported;
      Alcotest.(check int) "re-points lane-independent" a.Loop.ep_rerouted
        b.Loop.ep_rerouted)
    r1.Loop.epochs r4.Loop.epochs

(* ------------- elastic placement: drain-safety invariants ------------ *)

module Shard = Sb_dataplane.Shard
module Place = Sb_adapt.Place

(* A deployment the drain protocol can retract: vnf 0 split across sites
   1 and 2, routes committed through the full 2PC, a handful of
   connections established and pinned on site 2, then the chain routed
   off the site — the scale-in precondition. The checker's own probe
   connections are registered after the route update, so they pin on the
   surviving site and stay live across the whole scale-in (its epoch
   probes refresh them); the site-2 connections are driven manually and
   idle out when the test advances the expiry clock. *)
let drain_fixture () =
  let delay i j = if i = j then 0. else 0.02 in
  let sys =
    System.create ~seed:11 ~flow_store:(Fabric.Replicated 2) ~lanes:2
      ~num_sites:4 ~delay ~gsb_site:0 ()
  in
  List.iter
    (fun (vnf, site) -> System.deploy_vnf sys ~vnf ~site ~capacity:100. ~instances:2)
    [ (0, 1); (0, 2) ];
  System.register_edge sys ~site:0 ~attachment:"in";
  System.register_edge sys ~site:3 ~attachment:"out";
  System.set_route_policy sys (fun _ ~exclude:_ ->
      Some
        [
          { element_sites = [| 0; 1; 3 |]; weight = 0.5 };
          { element_sites = [| 0; 2; 3 |]; weight = 0.5 };
        ]);
  let chain =
    System.request_chain sys
      {
        spec_name = "drain";
        ingress_attachment = "in";
        egress_attachment = "out";
        vnfs = [ 0 ];
        traffic = 4.;
      }
  in
  Engine.run (System.engine sys);
  Alcotest.(check int) "routes committed" 2
    (List.length (System.chain_routes sys ~chain));
  let ids2 = System.site_vnf_instance_ids sys ~site:2 ~vnf:0 in
  let on_site2 trace =
    List.exists (fun i -> List.mem i ids2) (Shard.instances_in_trace trace)
  in
  (* Establish connections until some pin on site 2. *)
  let rng = Sb_util.Rng.create 23 in
  let pinned2 = ref [] in
  for _ = 1 to 12 do
    let tu = Sb_dataplane.Packet.random_tuple rng in
    match System.probe_chain sys ~chain tu with
    | Ok trace -> if on_site2 trace then pinned2 := tu :: !pinned2
    | Error e -> Alcotest.failf "establish probe failed: %a" Fabric.pp_error e
  done;
  Alcotest.(check bool) "some connections pinned on site 2" true (!pinned2 <> []);
  (* Route the chain off site 2: the scale-in precondition. *)
  System.update_routes sys ~chain [ { element_sites = [| 0; 1; 3 |]; weight = 1.0 } ];
  Engine.run (System.engine sys);
  let iv = Invariant.create ~sys ~num_sites:4 ~seed:11 in
  Invariant.register_chain iv ~chain ~tuples:6;
  Invariant.check_epoch iv;
  (sys, chain, iv, ids2, on_site2, !pinned2)

let check_no_violations what iv =
  match Invariant.violations iv with
  | [] -> ()
  | vs ->
    Alcotest.failf "%s: %s" what
      (String.concat "; "
         (List.map (fun v -> Format.asprintf "%a" Invariant.pp_violation v) vs))

let test_drain_retracts_safely () =
  let sys, chain, iv, _ids2, on_site2, pinned2 = drain_fixture () in
  let eng = System.engine sys in
  let done_ = ref [] in
  System.drain_and_remove sys ~vnf:0 ~site:2 ~timeout:30.
    ~on_done:(fun ok -> done_ := ok :: !done_) ();
  (* One poll in: the weights are zero and the checker sees the drain.
     Connections established before it still cross site 2 (flow
     affinity), so the drain cannot complete — and must not violate. *)
  Engine.run_until eng (Engine.now eng +. 0.3);
  Invariant.check_epoch iv;
  Alcotest.(check (list bool)) "drain still pending on live flows" [] !done_;
  List.iter
    (fun tu ->
      match System.probe_chain sys ~chain tu with
      | Ok trace ->
        Alcotest.(check bool) "established connection still served by site 2" true
          (on_site2 trace)
      | Error e -> Alcotest.failf "established probe failed: %a" Fabric.pp_error e)
    pinned2;
  (* ... while a brand-new connection must avoid the draining site. *)
  (match
     System.probe_chain sys ~chain
       (Sb_dataplane.Packet.random_tuple (Sb_util.Rng.create 31))
   with
  | Ok trace ->
    Alcotest.(check bool) "new connection avoids draining site" false
      (on_site2 trace)
  | Error e -> Alcotest.failf "new-connection probe failed: %a" Fabric.pp_error e);
  (* The site-2 connections idle out (the checker's own probes were
     refreshed at tick 5, so they survive the sweep); the next poll
     retracts. *)
  let fabric = System.shard sys in
  Shard.set_clock fabric 5;
  Invariant.check_epoch iv;
  ignore (Shard.expire_flows fabric ~idle_before:5);
  Engine.run_until eng (Engine.now eng +. 2.);
  Alcotest.(check (list bool)) "drain completed" [ true ] !done_;
  let ch = System.deployment_churn sys in
  Alcotest.(check int) "deployment removed" 1 ch.System.ch_removed;
  Alcotest.(check int) "drain counted" 1 ch.System.ch_drains_completed;
  Alcotest.(check int) "no abort" 0 ch.System.ch_drains_aborted;
  Alcotest.(check (list int)) "site 2 census empty" []
    (System.site_vnf_instance_ids sys ~site:2 ~vnf:0);
  (* The checker observes the retraction (no flow left pinned to the
     retired instances) and the strict quiesce probes all pass on the
     surviving site. *)
  Invariant.check_epoch iv;
  Engine.run eng;
  Invariant.check_quiesce iv;
  check_no_violations "after completed drain" iv

let test_drain_aborts_atomically_on_gsb_death () =
  let sys, chain, iv, _ids2, on_site2, pinned2 = drain_fixture () in
  let eng = System.engine sys in
  let before = System.site_vnf_instances sys ~site:2 ~vnf:0 in
  Alcotest.(check bool) "site 2 live before drain" true (before <> []);
  let done_ = ref [] in
  System.drain_and_remove sys ~vnf:0 ~site:2 ~timeout:30.
    ~on_done:(fun ok -> done_ := ok :: !done_) ();
  Engine.run_until eng (Engine.now eng +. 0.3);
  Invariant.check_epoch iv;
  (* The coordinator dies mid-drain: the next poll must abort — saved
     weights restored, nothing retracted, scale-in atomic. *)
  System.set_gsb_down sys true;
  Engine.run_until eng (Engine.now eng +. 0.6);
  Alcotest.(check (list bool)) "drain aborted" [ false ] !done_;
  System.set_gsb_down sys false;
  let ch = System.deployment_churn sys in
  Alcotest.(check int) "nothing removed" 0 ch.System.ch_removed;
  Alcotest.(check int) "abort counted" 1 ch.System.ch_drains_aborted;
  Alcotest.(check int) "no drain in flight" 0 ch.System.ch_draining;
  Alcotest.(check (list (pair int (float 0.)))) "weights restored verbatim" before
    (System.site_vnf_instances sys ~site:2 ~vnf:0);
  (* Every connection keeps its original instances across the abort; the
     checker clears its drain tracking and the quiesce checks pass. *)
  List.iter
    (fun tu ->
      match System.probe_chain sys ~chain tu with
      | Ok trace ->
        Alcotest.(check bool) "connection still on site 2 after abort" true
          (on_site2 trace)
      | Error e -> Alcotest.failf "post-abort probe failed: %a" Fabric.pp_error e)
    pinned2;
  Invariant.check_epoch iv;
  Engine.run eng;
  Invariant.check_quiesce iv;
  check_no_violations "after aborted drain" iv

(* The whole capability under chaos: the placement-armed closed loop on
   the flash-crowd scenario, epoch probes running, and the Global
   Switchboard dying for two epochs inside the flash window — pausing
   control ticks and aborting any drain in flight. Zero violations
   (conformity, affinity, symmetry, single-copy, drain safety), and the
   planner still acts outside the outage. *)
let test_placement_loop_invariants_under_gsb_outage () =
  let cfg = { Scenario.smoke_config with Scenario.ticks = 12 } in
  let sc, _oracle_extras = Scenario.placement_scenario cfg in
  let params =
    {
      Loop.default_params with
      Loop.seed = cfg.Scenario.seed;
      placement = Some Place.default_params;
    }
  in
  let num_sites = Model.num_sites sc.Loop.sc_model in
  let horizon =
    (float_of_int cfg.Scenario.ticks *. cfg.Scenario.epoch_len) +. 1.
  in
  let sched =
    Sb_chaos.Schedule.of_faults ~seed:cfg.Scenario.seed ~horizon ~num_sites
      [ Schedule.Gsb_failover { start = 6.2; stop = 8.2 } ]
  in
  let rng = Sb_util.Rng.create (cfg.Scenario.seed + 202) in
  let checker = ref None in
  let on_system sys =
    let iv = Invariant.create ~sys ~num_sites ~seed:cfg.Scenario.seed in
    List.iter
      (fun chain -> Invariant.register_chain iv ~chain ~tuples:2)
      (System.chain_ids sys);
    let eng = System.engine sys in
    let t0 = Engine.now eng in
    for e = 0 to cfg.Scenario.ticks - 1 do
      ignore
        (Engine.schedule_at eng
           ~time:(t0 +. ((float_of_int e +. 0.5) *. cfg.Scenario.epoch_len))
           (fun () -> Invariant.check_epoch iv))
    done;
    checker := Some iv;
    Inject.arm ~sys ~observe:(Invariant.observe_wan iv) ~rng sched
  in
  let r = Loop.run ~params ~on_system sc Loop.Closed_loop in
  Alcotest.(check bool) "planner acted despite the outage" true
    (r.Loop.total_scale_actions > 0);
  match !checker with
  | None -> Alcotest.fail "closed loop never built a system"
  | Some iv -> check_no_violations "placement loop under GSB outage" iv

let () =
  Alcotest.run "sb_chaos"
    [
      ( "schedule",
        [
          Alcotest.test_case "generate deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "death windows disjoint" `Quick
            test_generate_death_windows_disjoint;
          Alcotest.test_case "shrink strictly smaller" `Quick
            test_shrink_strictly_smaller;
        ] );
      ( "harness",
        [
          Alcotest.test_case "seeded replay identical" `Quick test_replay_identical;
          Alcotest.test_case "relay loop regression (mixed-role site)" `Quick
            test_no_relay_loop_when_site_is_sender_and_receiver;
          Alcotest.test_case "sharded fabric: schedules stay violation-free" `Quick
            test_sharded_fabric_no_violations;
        ] );
      ("search", [ QCheck_alcotest.to_alcotest prop_no_violations ]);
      ( "outage",
        [
          Alcotest.test_case "anycast degrades gracefully under GSB loss" `Quick
            test_anycast_degrades_gracefully_under_gsb_loss;
          Alcotest.test_case "anycast invariants hold, lane-independent" `Quick
            test_anycast_invariants_lane_independent;
        ] );
      ( "placement",
        [
          Alcotest.test_case "drain retracts only after flows end" `Quick
            test_drain_retracts_safely;
          Alcotest.test_case "drain aborts atomically on GSB death" `Quick
            test_drain_aborts_atomically_on_gsb_death;
          Alcotest.test_case "placement loop invariants under GSB outage" `Quick
            test_placement_loop_invariants_under_gsb_outage;
        ] );
    ]
